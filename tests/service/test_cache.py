"""Codegen-cache correctness: content addressing, LRU, recovery.

The acceptance bar (ISSUE): a warm hit returns byte-identical C, and a
changed model, ISA, or semantic option each changes the content address
(a miss). Cache problems degrade to misses with stable diagnostics
(HCG305/HCG306) — they never abort generation.
"""

import os
import pickle

import pytest

from repro.api import CodegenOptions, GenerateRequest, generate
from repro.arch.presets import get_architecture
from repro.bench.models import fir_model, lowpass_model
from repro.service.cache import CacheEntry, CodegenCache, TimingCache
from repro.service.digest import (
    cache_key,
    isa_digest,
    model_digest,
    options_digest,
)
from repro.service.service import CodegenService
from repro.verify.fuzz import subset_instruction_set


def cached_request(model, tmp_path, **option_changes):
    options = CodegenOptions(
        policy="permissive", cache_dir=str(tmp_path), use_cache=True,
        **option_changes,
    )
    return GenerateRequest(model=model, options=options)


class TestContentAddressing:
    def test_model_change_changes_digest(self):
        assert model_digest(fir_model(8)) != model_digest(fir_model(16))
        assert model_digest(fir_model(8)) != model_digest(lowpass_model(8))
        assert model_digest(fir_model(8)) == model_digest(fir_model(8))

    def test_isa_change_changes_digest(self):
        full = get_architecture("arm_a72").instruction_set
        subset = subset_instruction_set(
            full, tuple(spec.name for spec in full.instructions[:2])
        )
        assert isa_digest(full) != isa_digest(subset)
        assert isa_digest(full) == isa_digest(full)

    def test_semantic_option_change_changes_digest(self):
        base = CodegenOptions()
        assert options_digest(base) != options_digest(
            base.replace(unroll_limit=4)
        )
        assert options_digest(base) != options_digest(
            base.replace(branch_aware=True)
        )

    def test_operational_options_do_not_change_digest(self):
        base = CodegenOptions()
        operational = base.replace(
            jobs=8, use_cache=False, cache_dir="/tmp/elsewhere",
            history_path="/tmp/h.json",
        )
        assert options_digest(base) == options_digest(operational)

    def test_generator_name_is_part_of_the_key(self):
        model, iset, opts = "m" * 64, "i" * 64, "o" * 64
        assert cache_key(model, iset, "hcg", opts) != cache_key(
            model, iset, "dfsynth", opts
        )


class TestCacheRoundTrip:
    def test_warm_hit_is_byte_identical(self, tmp_path):
        model = fir_model(8)
        cold = generate(cached_request(model, tmp_path))
        warm = generate(cached_request(model, tmp_path))
        assert cold.from_cache is False
        assert warm.from_cache is True
        assert warm.c_source == cold.c_source
        assert warm.cache_key == cold.cache_key
        assert warm.metrics["service.from_cache"] == 1

    def test_shared_service_counts_hit_and_miss(self, tmp_path):
        options = CodegenOptions(
            policy="permissive", cache_dir=str(tmp_path), use_cache=True
        )
        service = CodegenService.from_options(options)
        request = GenerateRequest(model=fir_model(8), options=options)
        generate(request, service=service)
        generate(request, service=service)
        stats = service.stats()["codegen_cache"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == 0.5

    def test_model_change_misses(self, tmp_path):
        first = generate(cached_request(fir_model(8), tmp_path))
        second = generate(cached_request(fir_model(16), tmp_path))
        assert second.from_cache is False
        assert second.cache_key != first.cache_key

    def test_isa_change_misses(self, tmp_path):
        first = generate(cached_request(fir_model(8), tmp_path))
        second = generate(cached_request(
            fir_model(8), tmp_path, arch="intel_i7_8700"
        ))
        assert second.from_cache is False
        assert second.cache_key != first.cache_key

    def test_option_change_misses(self, tmp_path):
        first = generate(cached_request(fir_model(8), tmp_path))
        second = generate(cached_request(
            fir_model(8), tmp_path, unroll_limit=0
        ))
        assert second.from_cache is False
        assert second.cache_key != first.cache_key

    def test_no_cache_skips_the_cache_dir(self, tmp_path):
        result = generate(GenerateRequest(
            model=fir_model(8),
            options=CodegenOptions(policy="permissive",
                                   cache_dir=str(tmp_path), use_cache=False),
        ))
        assert result.cache_key is None
        assert not (tmp_path / "codegen").exists()

    def test_hit_honors_verify_upgrade(self, tmp_path):
        model = fir_model(8)
        generate(cached_request(model, tmp_path))
        warm = generate(GenerateRequest(
            model=model, verify=True,
            options=CodegenOptions(policy="permissive",
                                   cache_dir=str(tmp_path), use_cache=True),
        ))
        assert warm.from_cache is True
        assert warm.verified is True


def entry(key, payload="x", size=1):
    return CacheEntry(
        key=key, model="M", generator="hcg", arch="arm_a72",
        c_source=payload * size, program=None,
    )


class TestLruEviction:
    def test_oldest_entry_evicted_over_cap(self, tmp_path):
        cache = CodegenCache(tmp_path, max_bytes=1)
        first = cache.store(entry("a" * 64))
        os.utime(first, (1, 1))  # make it the LRU victim
        cache.store(entry("b" * 64))
        assert cache.evictions >= 1
        assert not first.exists()
        assert cache.entry_path("b" * 64).exists()  # just-written survives

    def test_lookup_refreshes_lru_clock(self, tmp_path):
        cache = CodegenCache(tmp_path, max_bytes=10**9)
        path = cache.store(entry("a" * 64))
        os.utime(path, (1, 1))
        cache.lookup("a" * 64)
        assert path.stat().st_mtime > 1


class TestCacheRecovery:
    def test_corrupt_entry_is_a_reported_miss(self, tmp_path):
        cache = CodegenCache(tmp_path)
        key = "c" * 64
        path = cache.store(entry(key))
        path.write_bytes(b"not a pickle")
        assert cache.lookup(key) is None
        assert cache.misses == 1
        assert not path.exists()  # removed, not left to fail again
        codes = [d.code for d in cache.diagnostics]
        assert codes == ["HCG305"]

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = CodegenCache(tmp_path)
        key = "d" * 64
        path = cache.store(entry(key))
        path.write_bytes(pickle.dumps({"schema": 999, "entry": entry(key)}))
        assert cache.lookup(key) is None

    def test_unwritable_root_reports_hcg307(self, tmp_path):
        # a root whose parent is a regular file cannot be created, even
        # for privileged users (chmod-based denial is a no-op as root);
        # any OSError on the write path is the HCG307 dropped-entry case
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        cache = CodegenCache(blocker / "cache")
        assert cache.store(entry("e" * 64)) is None
        assert [d.code for d in cache.diagnostics] == ["HCG307"]
        assert cache.write_failures == 1

    def test_recoveries_fold_into_the_result(self, tmp_path):
        model = fir_model(8)
        cold = generate(cached_request(model, tmp_path))
        path = CodegenCache(tmp_path / "codegen").entry_path(cold.cache_key)
        path.write_bytes(b"garbage")
        rebuilt = generate(cached_request(model, tmp_path))
        assert rebuilt.from_cache is False
        assert "HCG305" in [d.code for d in rebuilt.diagnostics]
        assert rebuilt.c_source == cold.c_source


def raise_enospc():
    raise OSError(28, "No space left on device")


class TestDiskFullRecovery:
    """HCG307: a failed cache write degrades to a miss, never an error."""

    def test_write_fault_drops_the_entry_with_hcg307(self, tmp_path):
        cache = CodegenCache(tmp_path)
        cache.inject_write_fault = raise_enospc
        assert cache.store(entry("f" * 64)) is None
        assert [d.code for d in cache.diagnostics] == ["HCG307"]
        assert cache.write_failures == 1
        assert cache.stats()["write_failures"] == 1
        # the dropped entry is an ordinary miss afterwards
        assert cache.lookup("f" * 64) is None
        assert cache.misses == 1

    def test_write_fault_bumps_the_counter(self, tmp_path):
        from repro.observability.tracer import Tracer

        tracer = Tracer()
        cache = CodegenCache(tmp_path, tracer=tracer)
        cache.inject_write_fault = raise_enospc
        cache.store(entry("f" * 64))
        assert tracer.counters["cache.write_failed"] == 1

    def test_writes_resume_once_space_returns(self, tmp_path):
        cache = CodegenCache(tmp_path)
        cache.inject_write_fault = raise_enospc
        assert cache.store(entry("f" * 64)) is None
        cache.inject_write_fault = None
        path = cache.store(entry("f" * 64))
        assert path is not None and path.exists()
        assert cache.lookup("f" * 64) is not None

    def test_generation_survives_a_full_disk(self, tmp_path):
        model = fir_model(8)
        options = CodegenOptions(
            policy="permissive", cache_dir=str(tmp_path), use_cache=True
        )
        service = CodegenService.from_options(options)
        service.cache.inject_write_fault = raise_enospc
        request = GenerateRequest(model=model, options=options)
        result = generate(request, service=service)
        assert result.c_source
        assert "HCG307" in [d.code for d in result.diagnostics]
        # nothing was cached, so the retry is a miss that regenerates
        again = generate(request, service=service)
        assert again.from_cache is False
        assert again.c_source == result.c_source


class TestTimingCache:
    def test_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "alg1_arm_a72.json"
        key = TimingCache.key_for("sel", "kernel.fir", 4)
        TimingCache(path).store(key, 12.5)
        reloaded = TimingCache(path)
        assert reloaded.lookup(key) == 12.5
        assert reloaded.lookup("absent") is None
        assert reloaded.stats()["hits"] == 1
        assert reloaded.stats()["misses"] == 1

    def test_corrupt_file_starts_empty_with_hcg305(self, tmp_path):
        path = tmp_path / "alg1_arm_a72.json"
        path.write_text("{broken")
        cache = TimingCache(path)
        assert len(cache) == 0
        assert [d.code for d in cache.diagnostics] == ["HCG305"]
