"""Tests for IR expressions, statements and program containers."""

import pytest

from repro.dtypes import DataType
from repro.errors import CodegenError
from repro.ir import (
    AssignVar,
    BufferDecl,
    BufferKind,
    Cmp,
    Const,
    For,
    If,
    Load,
    NameAllocator,
    Program,
    ScalarOp,
    Select,
    Store,
    Var,
    VectorType,
    add_index,
    const_i,
    walk,
)


class TestExpr:
    def test_children_traversal(self):
        expr = ScalarOp("Add", (Var("a"), Const(1, DataType.I32)), DataType.I32)
        assert len(expr.children()) == 2

    def test_cmp_validates_op(self):
        with pytest.raises(ValueError, match="invalid comparison"):
            Cmp("<>", Var("a"), Var("b"))

    def test_add_index_folds_zero(self):
        base = Var("i")
        assert add_index(base, 0) is base

    def test_add_index_folds_constants(self):
        out = add_index(const_i(5), 3)
        assert isinstance(out, Const) and out.value == 8

    def test_add_index_builds_op(self):
        out = add_index(Var("i"), 2)
        assert isinstance(out, ScalarOp) and out.op == "Add"

    def test_str_rendering(self):
        expr = Select(Cmp(">=", Var("c"), const_i(0)), Var("a"), Load("buf", Var("i")))
        text = str(expr)
        assert "c >= 0" in text and "buf[i]" in text


class TestStmt:
    def test_walk_recurses_into_blocks(self):
        inner = Store("b", Var("i"), Var("x"))
        loop = For("i", const_i(0), const_i(4), 1, (inner,))
        cond = If(Cmp("<", Var("a"), Var("b")), (loop,), (inner,))
        flattened = walk([cond])
        assert inner in flattened and loop in flattened and cond in flattened
        assert len(flattened) == 4  # cond, loop, inner (x2 occurrences)


class TestVectorType:
    def test_bits(self):
        assert VectorType(DataType.I32, 4).bit_width == 128
        assert str(VectorType(DataType.F32, 8)) == "f32x8"

    def test_min_lanes(self):
        with pytest.raises(ValueError, match="lanes"):
            VectorType(DataType.I32, 1)


class TestBufferDecl:
    def test_byte_size(self):
        decl = BufferDecl("b", DataType.F64, 10, BufferKind.LOCAL)
        assert decl.byte_size == 80

    def test_init_length_checked(self):
        with pytest.raises(ValueError, match="init"):
            BufferDecl("b", DataType.I32, 4, BufferKind.CONST, init=(1.0, 2.0))

    def test_positive_length(self):
        with pytest.raises(ValueError, match="positive"):
            BufferDecl("b", DataType.I32, 0, BufferKind.LOCAL)


class TestProgram:
    def test_buffer_lookup(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.INPUT))
        assert program.buffer("x").length == 4
        assert program.has_buffer("x") and not program.has_buffer("y")

    def test_duplicate_buffer_rejected(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.INPUT))
        with pytest.raises(CodegenError, match="duplicate"):
            program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.LOCAL))

    def test_missing_buffer_error(self):
        with pytest.raises(CodegenError, match="no buffer"):
            Program("p").buffer("ghost")

    def test_kind_views(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.INPUT))
        program.add_buffer(BufferDecl("y", DataType.I32, 4, BufferKind.OUTPUT))
        assert [b.name for b in program.inputs] == ["x"]
        assert [b.name for b in program.outputs] == ["y"]

    def test_data_bytes(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.INPUT))
        program.add_buffer(BufferDecl("y", DataType.F64, 2, BufferKind.LOCAL))
        assert program.data_bytes() == 16 + 16


class TestNameAllocator:
    def test_fresh_unique(self):
        names = NameAllocator()
        assert names.fresh("t") == "t0"
        assert names.fresh("t") == "t1"

    def test_reserved_names_skipped(self):
        names = NameAllocator()
        names.reserve("t0")
        assert names.fresh("t") == "t1"
