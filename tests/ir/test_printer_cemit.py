"""Tests for the IR printer and the C emitter."""

import pytest

from repro.arch import (ARM_A72, INTEL_I7_8700, INTEL_I7_8700_SSE4,
                        get_architecture)
from repro.bench.models import benchmark_suite, fir_model, highpass_model
from repro.codegen import DfsynthGenerator, HcgGenerator, SimulinkCoderGenerator
from repro.dtypes import DataType
from repro.ir.cemit import emit_c
from repro.ir.printer import format_program


def _balanced(source: str) -> bool:
    depth = 0
    for char in source:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


class TestPrinter:
    def test_dump_contains_structure(self):
        program = HcgGenerator(ARM_A72).generate(fir_model(16))
        text = format_program(program)
        assert "program FIR_step" in text
        assert "buffer input" in text
        assert "vmlaq_s32" in text

    def test_all_generators_printable(self):
        model = highpass_model(32)
        for generator in (SimulinkCoderGenerator(INTEL_I7_8700),
                          DfsynthGenerator(ARM_A72),
                          HcgGenerator(ARM_A72)):
            assert format_program(generator.generate(model))


class TestCEmitter:
    def test_neon_includes_and_types(self):
        program = HcgGenerator(ARM_A72).generate(fir_model(16))
        source = emit_c(program, ARM_A72.instruction_set)
        assert "#include <arm_neon.h>" in source
        assert "int32x4_t" in source
        assert "vld1q_s32" in source and "vst1q_s32" in source
        assert _balanced(source)

    def test_avx2_includes_and_types(self):
        program = HcgGenerator(INTEL_I7_8700).generate(highpass_model(64))
        source = emit_c(program, INTEL_I7_8700.instruction_set)
        assert "#include <immintrin.h>" in source
        assert "__m256" in source
        assert "_mm256_loadu_ps" in source
        assert _balanced(source)

    def test_sse4_integer_casts(self):
        from repro.model.builder import ModelBuilder

        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        y = b.inport("y", shape=16)
        s = b.add_actor("Add", "s", x, y)
        b.outport("o", s)
        program = HcgGenerator(INTEL_I7_8700_SSE4).generate(b.build())
        source = emit_c(program, INTEL_I7_8700_SSE4.instruction_set)
        assert "_mm_loadu_si128" in source
        assert "_mm_add_epi32" in source

    def test_scalar_program_plain_c(self):
        program = DfsynthGenerator(ARM_A72).generate(fir_model(16))
        source = emit_c(program)
        assert "immintrin" not in source and "arm_neon" not in source
        assert "for (int32_t" in source
        assert _balanced(source)

    def test_const_buffer_initialisers(self):
        program = HcgGenerator(ARM_A72).generate(fir_model(8))
        source = emit_c(program, ARM_A72.instruction_set)
        assert "static const int32_t" in source

    def test_kernel_call_rendered(self):
        model = benchmark_suite()["FFT"]
        program = HcgGenerator(ARM_A72).generate(model)
        source = emit_c(program, ARM_A72.instruction_set)
        # size-specialised call plus a typed prototype for the library build
        assert "fft_radix4_simd_n1024(x, fft__out);" in source
        assert "void fft_radix4_simd_n1024(const float* in0, float* out0);" in source

    def test_kernel_definitions_emitted_when_available(self):
        model = benchmark_suite()["Conv"]
        program = SimulinkCoderGenerator(ARM_A72).generate(model)
        source = emit_c(program, ARM_A72.instruction_set)
        assert "void conv_direct_n1024_m64(" in source
        assert "direct O(n*m) convolution" in source

    @pytest.mark.parametrize("name", ["FFT", "DCT", "Conv", "HighPass", "LowPass", "FIR"])
    def test_every_benchmark_emits_balanced_c(self, name):
        model = benchmark_suite()[name]
        for arch in (ARM_A72, INTEL_I7_8700):
            for generator in (SimulinkCoderGenerator(arch),
                              DfsynthGenerator(arch),
                              HcgGenerator(arch)):
                source = emit_c(generator.generate(model), arch.instruction_set)
                assert _balanced(source), (name, arch.name, generator.name)
                assert f"void {model.name}_step(void)" in source

    def test_rvv_includes_types_and_vl(self):
        arch = get_architecture("riscv_u74")
        # width 66 = 8 full f32 batches + a 2-lane predicated tail
        from repro.model.builder import ModelBuilder

        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=66)
        y = b.inport("y", shape=66)
        s = b.add_actor("Add", "s", x, y)
        b.outport("o", s)
        program = HcgGenerator(arch).generate(b.build())
        source = emit_c(program, arch.instruction_set)
        assert "#include <riscv_vector.h>" in source
        assert "vfloat32m1_t" in source
        # full-width bodies pass the register's lane count as AVL,
        # the predicated tail passes the residue
        assert "__riscv_vle32_v_f32m1(&x[i0], 8)" in source
        assert "__riscv_vle32_v_f32m1(&x[64], 2)" in source
        assert "__riscv_vadd" not in source  # f32 model: no integer ops
        assert _balanced(source)

    def test_avx512_masked_tail_intrinsics(self):
        arch = get_architecture("intel_xeon_8380")
        from repro.model.builder import ModelBuilder

        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=35)  # 2 x 16 lanes + 3 masked
        y = b.inport("y", shape=35)
        s = b.add_actor("Add", "s", x, y)
        b.outport("o", s)
        program = HcgGenerator(arch).generate(b.build())
        source = emit_c(program, arch.instruction_set)
        assert "#include <immintrin.h>" in source
        assert "__m512" in source
        assert "_mm512_loadu_ps" in source  # full-width body
        assert "_mm512_maskz_loadu_ps((__mmask16)((1ULL << 3) - 1)" in source
        assert "_mm512_mask_storeu_ps" in source
        assert _balanced(source)

    def test_switch_renders_if_or_ternary(self):
        model = highpass_model(16)
        source = emit_c(SimulinkCoderGenerator(ARM_A72).generate(model))
        assert "?" in source or "if" in source
