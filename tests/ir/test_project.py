"""Tests for deployable project packaging."""

import shutil
import subprocess

import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.bench.models import fir_model, highpass_model
from repro.codegen import DfsynthGenerator, HcgGenerator
from repro.ir.project import emit_header, emit_project, emit_readme

GCC = shutil.which("gcc")


class TestHeader:
    def test_io_buffers_and_step_declared(self):
        program = HcgGenerator(ARM_A72).generate(fir_model(32))
        header = emit_header(program)
        assert "extern int32_t x[32];" in header
        assert "extern int32_t y[32];" in header
        assert "void FIR_step(void);" in header
        assert "#ifndef FIR_STEP_H" in header

    def test_internals_not_exposed(self):
        program = HcgGenerator(ARM_A72).generate(fir_model(32))
        header = emit_header(program)
        assert "h__out" not in header        # const table stays internal
        assert "delayed__out" not in header  # state stays internal


class TestProject:
    def test_file_set(self):
        program = HcgGenerator(ARM_A72).generate(fir_model(32))
        files = emit_project(program, ARM_A72.instruction_set)
        assert set(files) == {"FIR_step.c", "FIR_step.h", "README.txt"}
        assert '#include "FIR_step.h"' in files["FIR_step.c"]

    def test_readme_mentions_flags_and_io(self):
        program = HcgGenerator(INTEL_I7_8700).generate(highpass_model(32))
        readme = emit_readme(program, INTEL_I7_8700.instruction_set)
        assert "-mavx2" in readme
        assert "x" in readme and "y" in readme

    @pytest.mark.skipif(GCC is None, reason="no host C compiler")
    def test_scalar_project_compiles_and_links(self, tmp_path):
        program = DfsynthGenerator(ARM_A72).generate(fir_model(24))
        files = emit_project(program)
        for filename, contents in files.items():
            (tmp_path / filename).write_text(contents)
        main = tmp_path / "main.c"
        main.write_text(
            '#include "FIR_step.h"\n'
            "#include <stdio.h>\n"
            "int main(void) {\n"
            "    for (int i = 0; i < 24; ++i) x[i] = i;\n"
            "    FIR_step();\n"
            '    printf("%d\\n", (int)y[0]);\n'
            "    return 0;\n"
            "}\n"
        )
        binary = tmp_path / "app"
        completed = subprocess.run(
            [GCC, "-O1", "-std=c99", str(tmp_path / "FIR_step.c"), str(main),
             "-o", str(binary), "-lm"],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stderr[-1500:]
        run = subprocess.run([str(binary)], capture_output=True, text=True, timeout=30)
        assert run.returncode == 0

    def test_cli_project_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["generate", "FIR", "--project", str(tmp_path / "proj")]) == 0
        assert (tmp_path / "proj" / "FIR_step.c").exists()
        assert (tmp_path / "proj" / "FIR_step.h").exists()
        assert (tmp_path / "proj" / "README.txt").exists()
