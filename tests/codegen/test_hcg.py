"""End-to-end tests of the HCG generator."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700, INTEL_I7_8700_SSE4
from repro.bench.models import benchmark_inputs, benchmark_suite
from repro.codegen import DfsynthGenerator, HcgGenerator, SimulinkCoderGenerator
from repro.codegen.hcg.history import SelectionHistory
from repro.dtypes import DataType
from repro.ir import KernelCall, SimdOp, walk
from repro.ir.types import BufferKind
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


class TestEndToEnd:
    @pytest.mark.parametrize("name", ["FFT", "DCT", "Conv", "HighPass", "LowPass", "FIR"])
    def test_benchmark_models_correct(self, name, any_arch):
        model = benchmark_suite()[name]
        inputs = benchmark_inputs(model)
        program = HcgGenerator(any_arch).generate(model)
        machine = Machine(program, any_arch)
        reference = ModelEvaluator(model)
        for _ in range(3):  # several steps: delays must track
            expected = reference.step(inputs)
            got = machine.run(inputs).outputs
            for key, value in expected.items():
                assert np.allclose(
                    got[key].reshape(value.shape), value, rtol=1e-4, atol=1e-4
                ), (name, key)

    def test_intensive_uses_algorithm1(self):
        model = benchmark_suite()["FFT"]
        generator = HcgGenerator(ARM_A72)
        program = generator.generate(model)
        calls = [s for s in walk(program.body) if isinstance(s, KernelCall)]
        assert calls[0].kernel_id == "fft.radix4_simd"  # §3's 1024-float example

    def test_batch_models_use_simd(self):
        for name in ("HighPass", "LowPass", "FIR"):
            program = HcgGenerator(ARM_A72).generate(benchmark_suite()[name])
            assert any(isinstance(s, SimdOp) for s in walk(program.body)), name

    def test_shared_history_across_models(self):
        history = SelectionHistory()
        generator = HcgGenerator(ARM_A72, history=history)
        model = benchmark_suite()["FFT"]
        generator.generate(model)
        misses = history.misses
        generator.generate(model)
        assert history.misses == misses  # second run fully cached
        assert history.hits >= 1

    def test_faster_than_baselines_on_all_benchmarks(self, any_compiler):
        for name, model in benchmark_suite().items():
            inputs = benchmark_inputs(model)
            cycles = {}
            for generator in (SimulinkCoderGenerator(ARM_A72),
                              DfsynthGenerator(ARM_A72),
                              HcgGenerator(ARM_A72)):
                program = any_compiler.compile(generator.generate(model))
                machine = Machine(program, ARM_A72,
                                  cost=any_compiler.effective_cost(ARM_A72))
                cycles[generator.name] = machine.run(inputs).cycles
            assert cycles["hcg"] < cycles["simulink_coder"], name
            assert cycles["hcg"] < cycles["dfsynth"], name

    def test_memory_usage_close_to_baselines(self):
        """§4.1 reports ±1%; our layouts agree exactly on most models
        and differ by at most one intermediate signal buffer (HighPass
        stores the Switch operand that Simulink folds)."""
        for name, model in benchmark_suite().items():
            sizes = {}
            for generator in (SimulinkCoderGenerator(ARM_A72),
                              DfsynthGenerator(ARM_A72),
                              HcgGenerator(ARM_A72)):
                sizes[generator.name] = generator.generate(model).data_bytes()
            base = sizes["simulink_coder"]
            assert abs(sizes["hcg"] - base) / base < 0.20, (name, sizes)

    def test_mixed_scale_model(self):
        """Batch groups of different widths + an intensive actor between."""
        b = ModelBuilder("mixed", default_dtype=DataType.F32)
        x = b.inport("x", shape=32)
        pre = b.add_actor("Abs", "pre", x)
        f = b.add_actor("FFT", "fft", pre, n=32)
        b.outport("spec", f)
        y = b.inport("y", shape=16)
        post = b.add_actor("Neg", "post", y)
        b.outport("o", post)
        model = b.build()
        program = HcgGenerator(ARM_A72).generate(model)
        inputs = benchmark_inputs(model)
        ref = ModelEvaluator(model).step(inputs)
        got = Machine(program, ARM_A72).run(inputs).outputs
        for key, value in ref.items():
            assert np.allclose(got[key].reshape(value.shape), value, rtol=1e-4, atol=1e-4)

    def test_group_output_feeding_other_group(self):
        """A narrower group consumes a wider group's stored output."""
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=8)
        a = b.add_actor("Abs", "a", x)      # group 1 (i32, width 8)
        c = b.add_actor("Cast", "c", a, dtype=DataType.F32, from_dtype="i32")
        s = b.add_actor("Sqrt", "s", c)     # same group (32-bit)
        b.outport("o", s)
        model = b.build()
        program = HcgGenerator(ARM_A72).generate(model)
        inputs = {"x": np.arange(8, dtype=np.int32)}
        ref = ModelEvaluator(model).step(inputs)["o"]
        got = Machine(program, ARM_A72).run(inputs).outputs["o"]
        assert np.allclose(got, ref, rtol=1e-6)

    def test_local_buffer_only_for_stored_values(self):
        model = benchmark_suite()["FIR"]
        program = HcgGenerator(ARM_A72).generate(model)
        locals_ = [b.name for b in program.buffers if b.kind is BufferKind.LOCAL]
        # 'weighted' lives in registers, and 'acc' stores straight into
        # the outport buffer — no scratch signal memory at all
        assert locals_ == []

    def test_stateful_model_multi_step(self):
        model = benchmark_suite()["LowPass"]
        inputs = benchmark_inputs(model)
        program = HcgGenerator(ARM_A72).generate(model)
        machine = Machine(program, ARM_A72)
        reference = ModelEvaluator(model)
        for step in range(5):
            expected = reference.step(inputs)["y"]
            got = machine.run(inputs).outputs["y"]
            assert np.allclose(got, expected, rtol=1e-5), f"step {step}"
