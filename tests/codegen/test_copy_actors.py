"""Tests for the Slice/Concat copy actors across all generators."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.codegen import DfsynthGenerator, HcgGenerator, SimulinkCoderGenerator
from repro.dtypes import DataType
from repro.errors import ModelError
from repro.ir import CopyBuffer, SimdOp, walk
from repro.model.actor_defs import create_actor
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator, evaluate_model
from repro.model.xml_io import model_from_string, model_to_string
from repro.vm import Machine

ALL_GENERATORS = [SimulinkCoderGenerator, DfsynthGenerator, HcgGenerator]


def _overlap_model(n=32, half=16):
    b = ModelBuilder("oa", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    lo = b.add_actor("Slice", "lo", x, offset=0, length=half)
    hi = b.add_actor("Slice", "hi", x, offset=n - half, length=half)
    s = b.add_actor("Add", "s", lo, hi)
    cat = b.add_actor("Concat", "cat", s, hi, shape2=half)
    b.outport("y", cat)
    return b.build()


class TestSemantics:
    def test_slice_defaults(self):
        actor = create_actor("s", "Slice", DataType.I32, {"shape": (8,), "offset": 3})
        assert actor.output("out").shape == (5,)

    def test_slice_bounds_checked(self):
        with pytest.raises(ModelError, match="out of"):
            create_actor("s", "Slice", DataType.I32,
                         {"shape": (8,), "offset": 6, "length": 4})

    def test_slice_evaluate(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=6)
        s = b.add_actor("Slice", "s", x, offset=2, length=3)
        b.outport("y", s)
        out = evaluate_model(b.build(), {"x": [0, 1, 2, 3, 4, 5]})
        assert list(out["y"]) == [2, 3, 4]

    def test_concat_evaluate(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=2)
        y = b.inport("y", shape=3)
        c = b.add_actor("Concat", "c", x, y, shape2=3)
        b.outport("o", c)
        out = evaluate_model(b.build(), {"x": [1, 2], "y": [3, 4, 5]})
        assert list(out["o"]) == [1, 2, 3, 4, 5]

    def test_xml_round_trip(self):
        model = _overlap_model()
        restored = model_from_string(model_to_string(model))
        inputs = {"x": np.arange(32, dtype=np.float32)}
        a = ModelEvaluator(model).step(inputs)["y"]
        b = ModelEvaluator(restored).step(inputs)["y"]
        assert np.array_equal(a, b)


class TestCodegen:
    @pytest.mark.parametrize("generator_cls", ALL_GENERATORS)
    def test_all_generators_correct(self, generator_cls, rng):
        model = _overlap_model()
        inputs = {"x": rng.normal(size=32).astype(np.float32)}
        want = ModelEvaluator(model).step(inputs)["y"]
        program = generator_cls(ARM_A72).generate(model)
        got = Machine(program, ARM_A72).run(inputs).outputs["y"]
        assert np.allclose(got, want, rtol=1e-6), generator_cls.__name__

    def test_translated_as_memcpy(self):
        program = HcgGenerator(ARM_A72).generate(_overlap_model())
        copies = [s for s in walk(program.body) if isinstance(s, CopyBuffer)]
        # 2 slices + 2 concat halves + outport copy
        assert len(copies) >= 4

    def test_slices_feed_batch_groups(self):
        """A slice output is a normal buffer: downstream batch actors
        still vectorise."""
        model = _overlap_model()
        generator = HcgGenerator(ARM_A72)
        program = generator.generate(model)
        assert any(isinstance(s, SimdOp) for s in walk(program.body))
        groups = generator.last_dispatch.groups
        assert any("s" in g.members for g in groups)

    def test_different_widths_stay_separate_groups(self):
        """Slicing changes the scale: actors on either side of a Slice
        have different widths and must not group together."""
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=32)
        pre = b.add_actor("Abs", "pre", x)          # width 32
        half = b.add_actor("Slice", "half", pre, offset=0, length=16)
        post = b.add_actor("Neg", "post", half)     # width 16
        b.outport("y", post)
        model = b.build()
        generator = HcgGenerator(ARM_A72)
        generator.generate(model)
        sizes = sorted(len(g.members) for g in generator.last_dispatch.groups)
        assert sizes == [1, 1]
