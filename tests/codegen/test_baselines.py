"""Behavioural tests for the two baseline generators."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.codegen import DfsynthGenerator, SimulinkCoderGenerator
from repro.dtypes import DataType
from repro.ir import For, If, KernelCall, SimdLoad, SimdOp, SimdStore, Store, walk
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


def _chain(n=32, dtype=DataType.F32):
    b = ModelBuilder("chain", default_dtype=dtype)
    x = b.inport("x", shape=n)
    y = b.inport("y", shape=n)
    m = b.add_actor("Mul", "m", x, y)
    a = b.add_actor("Add", "a", m, x)
    b.outport("o", a)
    return b.build()


def _switch(n=16):
    b = ModelBuilder("sw", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    ctrl = b.inport("ctrl")
    expensive = b.add_actor("Sqrt", "sq", x)
    sw = b.add_actor("Switch", "sw", expensive, dtype=DataType.F32, shape=n)
    b.connect(ctrl, sw, "ctrl")
    b.connect(x, sw, "in2")
    b.outport("y", sw)
    return b.build()


class TestSimulinkCoder:
    def test_folding_single_loop_for_chain(self):
        program = SimulinkCoderGenerator(ARM_A72).generate(_chain())
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        # folded chain: one loop writing the outport, nothing else
        assert len(loops) == 1
        assert not any(isinstance(s, SimdOp) for s in walk(program.body))

    def test_unrolls_small_widths(self):
        program = SimulinkCoderGenerator(ARM_A72).generate(_chain(n=4))
        assert not any(isinstance(s, For) for s in walk(program.body))
        stores = [s for s in walk(program.body) if isinstance(s, Store)]
        assert len(stores) == 4

    def test_generic_kernel_for_intensive(self):
        b = ModelBuilder("f", default_dtype=DataType.F32)
        x = b.inport("x", shape=64)
        f = b.add_actor("FFT", "fft", x, n=64)
        b.outport("y", f)
        program = SimulinkCoderGenerator(ARM_A72).generate(b.build())
        calls = [s for s in walk(program.body) if isinstance(s, KernelCall)]
        assert [c.kernel_id for c in calls] == ["fft.mixed"]  # general, not adaptive

    def test_no_simd_on_arm(self):
        program = SimulinkCoderGenerator(ARM_A72).generate(_chain(n=1024))
        assert not any(isinstance(s, (SimdOp, SimdLoad)) for s in walk(program.body))

    def test_scattered_simd_on_intel_floats(self):
        program = SimulinkCoderGenerator(INTEL_I7_8700).generate(_chain(n=1024))
        ops = [s for s in walk(program.body) if isinstance(s, SimdOp)]
        assert ops, "Intel toolchain should vectorise float batch actors"
        # scattered = every op is single-node; intermediates stored
        stores = [s for s in walk(program.body) if isinstance(s, SimdStore)]
        assert len(stores) >= 2

    def test_integer_batch_not_vectorised_on_intel(self):
        # the paper's FIR observation: i32 batch Mul/Add get no SIMD
        program = SimulinkCoderGenerator(INTEL_I7_8700).generate(
            _chain(n=1024, dtype=DataType.I32)
        )
        assert not any(isinstance(s, SimdOp) for s in walk(program.body))

    def test_scattered_tail_handles_odd_width(self, rng):
        model = _chain(n=1021)
        inputs = {
            "x": rng.uniform(-1, 1, 1021).astype(np.float32),
            "y": rng.uniform(-1, 1, 1021).astype(np.float32),
        }
        ref = ModelEvaluator(model).step(inputs)["o"]
        program = SimulinkCoderGenerator(INTEL_I7_8700).generate(model)
        out = Machine(program, INTEL_I7_8700).run(inputs).outputs["o"]
        assert np.allclose(out, ref, rtol=1e-6)


class TestDfsynth:
    def test_one_loop_per_actor(self):
        program = DfsynthGenerator(ARM_A72).generate(_chain())
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        assert len(loops) == 2  # Mul loop + Add loop (outport is a memcpy)

    def test_never_emits_simd(self):
        program = DfsynthGenerator(INTEL_I7_8700).generate(_chain(n=1024))
        assert not any(isinstance(s, (SimdOp, SimdLoad)) for s in walk(program.body))

    def test_branch_region_inside_if(self):
        program = DfsynthGenerator(ARM_A72).generate(_switch())
        ifs = [s for s in program.body if isinstance(s, If)]
        assert len(ifs) == 1
        then_loops = [s for s in walk(ifs[0].then_body) if isinstance(s, For)]
        assert then_loops, "the Sqrt chain must be computed inside the branch"

    def test_untaken_branch_costs_nothing_extra(self, rng):
        model = _switch(n=64)
        program = DfsynthGenerator(ARM_A72).generate(model)
        machine = Machine(program, ARM_A72)
        x = np.abs(rng.uniform(0.1, 1, 64)).astype(np.float32)
        taken = machine.run({"x": x, "ctrl": 1.0})
        machine2 = Machine(program, ARM_A72)
        bypass = machine2.run({"x": x, "ctrl": -1.0})
        assert bypass.cycles < taken.cycles  # Sqrt loop skipped

    def test_intensive_args_staged(self):
        b = ModelBuilder("f", default_dtype=DataType.F32)
        x = b.inport("x", shape=64)
        f = b.add_actor("FFT", "fft", x, n=64)
        b.outport("y", f)
        program = DfsynthGenerator(ARM_A72).generate(b.build())
        calls = [s for s in walk(program.body) if isinstance(s, KernelCall)]
        assert calls[0].inputs[0] != "x"  # staged copy, not the raw input

    def test_correctness_both_branches(self, rng):
        model = _switch(n=24)
        program = DfsynthGenerator(ARM_A72).generate(model)
        for ctrl in (1.0, -1.0):
            inputs = {"x": np.abs(rng.uniform(0.1, 1, 24)).astype(np.float32),
                      "ctrl": ctrl}
            ref = ModelEvaluator(model).step(inputs)["y"]
            out = Machine(program, ARM_A72).run(inputs).outputs["y"]
            assert np.allclose(out, ref, rtol=1e-6)
