"""The predicated remainder on masked/scalable ISAs (RVV, AVX-512).

On an instruction set that supports masked execution, Algorithm 2
replaces the scalar offset prologue with one extra SIMD pass whose
``vl`` field limits it to the leading ``length % batch_size`` lanes
(docs/algorithms.md, "Predicated remainder vs offset prologue").  These
tests pin the emitted structure — no scalar prologue, loop from zero,
one masked tail statement group — and prove the strategy bit-exact
against both the reference semantics and the offset prologue itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import get_architecture
from repro.codegen import HcgGenerator
from repro.dtypes import DataType
from repro.errors import CodegenError
from repro.ir import AssignVar, For, SimdLoad, SimdOp, SimdStore, walk
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.observability.metrics import COUNTERS
from repro.observability.tracer import Tracer
from repro.vm.machine import Machine

RVV = get_architecture("riscv_u74")
AVX512 = get_architecture("intel_xeon_8380")
NEON = get_architecture("arm_a72")


def mul_add_model(dtype, n):
    b = ModelBuilder("tail", default_dtype=dtype)
    x = b.inport("in0", shape=n)
    y = b.inport("in1", shape=n)
    c = b.const("c0", value=[(i % 5) + 1 for i in range(n)], dtype=dtype)
    product = b.add_actor("Mul", "n0", x, c)
    total = b.add_actor("Add", "n1", product, y)
    b.outport("y", total)
    return b.build()


def random_operands(dtype, n, seed):
    rng = np.random.default_rng(seed)
    if dtype.is_float:
        return {name: rng.uniform(-100.0, 100.0, size=n)
                .astype(dtype.numpy_dtype) for name in ("in0", "in1")}
    info = np.iinfo(dtype.numpy_dtype)
    return {name: rng.integers(info.min, info.max, size=n,
                               dtype=dtype.numpy_dtype, endpoint=True)
            for name in ("in0", "in1")}


def run_hcg(model, arch, *, inputs, **kwargs):
    generator = HcgGenerator(arch, **kwargs)
    program = generator.generate(model)
    machine = Machine(program, arch, instruction_set=generator.iset)
    with np.errstate(all="ignore"):
        out = machine.run(dict(inputs)).outputs["y"]
    return program, np.asarray(out).ravel()


class TestEmittedStructure:
    @pytest.mark.parametrize("arch", [RVV, AVX512], ids=["rvv", "avx512"])
    def test_no_scalar_prologue_on_masked_isa(self, arch):
        lanes = arch.instruction_set.lanes_for(DataType.I32)
        model = mul_add_model(DataType.I32, 2 * lanes + 3)
        generator = HcgGenerator(arch)
        program = generator.generate(model)
        # no scalar per-element statements anywhere: the tail is SIMD
        assert not any(isinstance(s, AssignVar) for s in walk(program.body))
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        assert loops[0].start.value == 0
        tail_ops = [s for s in walk(program.body)
                    if isinstance(s, (SimdLoad, SimdOp, SimdStore))
                    and s.vl == 3]
        assert tail_ops, "expected a vl=3 predicated tail"

    def test_offset_mode_keeps_scalar_prologue(self):
        lanes = RVV.instruction_set.lanes_for(DataType.I32)
        model = mul_add_model(DataType.I32, 2 * lanes + 3)
        program = HcgGenerator(RVV, tail_mode="offset").generate(model)
        assert any(isinstance(s, AssignVar) for s in walk(program.body))
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        assert loops[0].start.value == 3
        assert not any(s.vl is not None for s in walk(program.body)
                       if isinstance(s, (SimdLoad, SimdOp, SimdStore)))

    def test_non_masked_isa_keeps_offset_prologue_in_auto(self):
        lanes = NEON.instruction_set.lanes_for(DataType.I32)
        model = mul_add_model(DataType.I32, 2 * lanes + 3)
        program = HcgGenerator(NEON).generate(model)
        assert any(isinstance(s, AssignVar) for s in walk(program.body))
        assert not any(s.vl is not None for s in walk(program.body)
                       if isinstance(s, (SimdLoad, SimdOp, SimdStore)))

    def test_narrow_group_becomes_single_masked_pass(self):
        # width < one register: masked ISAs vectorise it in one pass
        # instead of demoting to conventional scalar translation
        lanes = RVV.instruction_set.lanes_for(DataType.I32)
        model = mul_add_model(DataType.I32, lanes - 1)
        tracer = Tracer()
        generator = HcgGenerator(RVV, tracer=tracer)
        program = generator.generate(model)
        ops = [s for s in walk(program.body) if isinstance(s, SimdOp)]
        assert ops and all(s.vl == lanes - 1 for s in ops)
        assert tracer.counters[COUNTERS.ALG2_GROUPS_MASKED_NARROW] == 1

    def test_predicated_counter_incremented(self):
        lanes = RVV.instruction_set.lanes_for(DataType.I32)
        model = mul_add_model(DataType.I32, 2 * lanes + 1)
        tracer = Tracer()
        HcgGenerator(RVV, tracer=tracer).generate(model)
        assert tracer.counters[COUNTERS.ALG2_TAIL_PREDICATED] == 1


class TestTailModeValidation:
    def test_unknown_tail_mode_rejected(self):
        with pytest.raises(ValueError, match="tail_mode"):
            HcgGenerator(RVV, tail_mode="sideways")

    def test_predicated_requires_masked_isa(self):
        with pytest.raises(CodegenError, match="scalable.*mask"):
            HcgGenerator(NEON, tail_mode="predicated")


class TestResidueSweep:
    """Every residue class, differentially against the reference."""

    @pytest.mark.parametrize("arch", [RVV, AVX512], ids=["rvv", "avx512"])
    @pytest.mark.parametrize("dtype", [DataType.I32, DataType.F32],
                             ids=["i32", "f32"])
    def test_all_residues_bit_exact(self, arch, dtype):
        lanes = arch.instruction_set.lanes_for(dtype)
        for residue in range(lanes):
            n = 2 * lanes + residue
            model = mul_add_model(dtype, n)
            inputs = random_operands(dtype, n, seed=residue)
            _, got = run_hcg(model, arch, inputs=inputs)
            with np.errstate(all="ignore"):
                expected = ModelEvaluator(model).step(dict(inputs))["y"]
            np.testing.assert_array_equal(got, np.asarray(expected).ravel())


@st.composite
def masked_case(draw):
    arch = draw(st.sampled_from([RVV, AVX512]))
    dtype = draw(st.sampled_from([DataType.I16, DataType.I32,
                                  DataType.F32, DataType.F64]))
    lanes = arch.instruction_set.lanes_for(dtype)
    n = draw(st.integers(1, 3 * lanes))
    return arch, dtype, n


class TestPredicatedEquivalenceProperty:
    @given(masked_case(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_predicated_equals_offset_prologue(self, case, seed):
        """The two tail strategies run the same per-element op sequence,
        so their outputs must agree bit for bit on every residue."""
        arch, dtype, n = case
        model = mul_add_model(dtype, n)
        inputs = random_operands(dtype, n, seed)
        _, predicated = run_hcg(model, arch, inputs=inputs,
                                tail_mode="predicated")
        _, offset = run_hcg(model, arch, inputs=inputs, tail_mode="offset")
        np.testing.assert_array_equal(predicated, offset)
        with np.errstate(all="ignore"):
            expected = ModelEvaluator(model).step(dict(inputs))["y"]
        np.testing.assert_array_equal(predicated,
                                      np.asarray(expected).ravel())
