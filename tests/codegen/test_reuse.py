"""Tests for the output-variable-reuse pass."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.bench.models import benchmark_inputs, benchmark_suite
from repro.codegen import DfsynthGenerator, HcgGenerator, SimulinkCoderGenerator
from repro.codegen.reuse import compute_live_intervals, reuse_local_buffers
from repro.dtypes import DataType
from repro.ir.types import BufferKind
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


def _pipeline_model(n=32):
    """A chain with fan-out at each stage, forcing several locals whose
    lifetimes are sequential."""
    b = ModelBuilder("pipe", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    stage1 = b.add_actor("Abs", "s1", x)
    b.outport("t1", stage1)           # fan-out: s1 must materialise
    stage2 = b.add_actor("Mul", "s2", stage1, stage1)
    b.outport("t2", stage2)
    stage3 = b.add_actor("Sqrt", "s3", stage2)
    b.outport("y", stage3)
    return b.build()


class TestIntervals:
    def test_intervals_ordered(self):
        generator = DfsynthGenerator(ARM_A72, variable_reuse=False)
        program = generator.generate(_pipeline_model())
        intervals = {iv.name: (iv.first, iv.last)
                     for iv in compute_live_intervals(program)}
        s1 = intervals["s1__out"]
        s2 = intervals["s2__out"]
        assert s1[0] < s2[0]          # s1 written first
        assert s1[1] >= s2[0] - 1     # overlapping or adjacent


class TestReusePass:
    def test_dfsynth_staging_buffers_shared(self):
        """DFSynth's sequential FFT/DCT arg-staging buffers can share."""
        from repro.bench.models import conv_model

        model = conv_model(64, 8)
        raw = DfsynthGenerator(ARM_A72, variable_reuse=False).generate(model)
        shared = DfsynthGenerator(ARM_A72, variable_reuse=True).generate(model)
        assert shared.data_bytes() <= raw.data_bytes()

    def test_semantics_preserved_across_suite(self):
        for name, model in benchmark_suite().items():
            inputs = benchmark_inputs(model)
            reference = ModelEvaluator(model)
            expected = [reference.step(inputs) for _ in range(2)]
            for generator_cls in (SimulinkCoderGenerator, DfsynthGenerator, HcgGenerator):
                program = generator_cls(ARM_A72, variable_reuse=True).generate(model)
                machine = Machine(program, ARM_A72)
                for step in range(2):
                    got = machine.run(inputs).outputs
                    for key, value in expected[step].items():
                        assert np.allclose(
                            got[key].reshape(value.shape), value,
                            rtol=1e-4, atol=1e-4,
                        ), (name, generator_cls.__name__, key)

    def test_disjoint_lifetimes_share_storage(self):
        model = _pipeline_model()
        raw = DfsynthGenerator(ARM_A72, variable_reuse=False).generate(model)
        shared = DfsynthGenerator(ARM_A72, variable_reuse=True).generate(model)
        raw_locals = len(raw.buffers_of_kind(BufferKind.LOCAL))
        shared_locals = len(shared.buffers_of_kind(BufferKind.LOCAL))
        # s1 lives until s2 is computed; s3's buffer can reuse s1's slot
        assert shared_locals <= raw_locals
        inputs = {"x": np.linspace(0.5, 2.0, 32).astype(np.float32)}
        want = Machine(raw, ARM_A72).run(inputs).outputs
        got = Machine(shared, ARM_A72).run(inputs).outputs
        for key in want:
            assert np.allclose(got[key], want[key], rtol=1e-6)

    def test_identity_when_nothing_to_share(self):
        from repro.bench.models import fir_model

        program = HcgGenerator(ARM_A72, variable_reuse=False).generate(fir_model(32))
        result, rename = reuse_local_buffers(program)
        assert rename == {}  # FIR has no local buffers at all

    def test_dtypes_never_mixed(self):
        b = ModelBuilder("mixed", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        a = b.add_actor("Abs", "a", x)
        b.outport("t", a)
        cast = b.add_actor("Cast", "c", a, dtype=DataType.F32, from_dtype="i32")
        s = b.add_actor("Sqrt", "s", cast)
        b.outport("y", s)
        model = b.build()
        program = DfsynthGenerator(ARM_A72, variable_reuse=True).generate(model)
        for decl in program.buffers_of_kind(BufferKind.LOCAL):
            # any shared slot must hold exactly one dtype
            assert decl.dtype in (DataType.I32, DataType.F32)
        inputs = {"x": np.arange(1, 17, dtype=np.int32)}
        want = ModelEvaluator(model).step(inputs)
        got = Machine(program, ARM_A72).run(inputs).outputs
        for key, value in want.items():
            assert np.allclose(got[key], value, rtol=1e-5)
