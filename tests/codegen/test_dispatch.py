"""Tests for HCG's actor dispatch (§3.1)."""

import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.codegen.hcg.dispatch import (
    BatchGroup,
    dispatch,
    is_batch_actor,
    is_intensive_actor,
    single_node_instruction,
)
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.schedule.scheduler import compute_schedule

NEON = ARM_A72.instruction_set


def _dispatch(model):
    return dispatch(model, compute_schedule(model), NEON)


class TestClassification:
    def test_intensive_by_kind(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=8)
        f = b.add_actor("FFT", "fft", x, n=8)
        b.outport("y", f)
        model = b.build()
        assert is_intensive_actor(model.actor("fft"))
        assert not is_intensive_actor(model.actor("x"))

    def test_batch_requires_array_input(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        s1 = b.inport("s1")
        s2 = b.inport("s2")
        scalar_add = b.add_actor("Add", "scalar_add", s1, s2)
        v = b.inport("v", shape=8)
        w = b.inport("w", shape=8)
        vec_add = b.add_actor("Add", "vec_add", v, w)
        b.outport("o1", scalar_add)
        b.outport("o2", vec_add)
        model = b.build()
        assert not is_batch_actor(model, model.actor("scalar_add"), NEON)
        assert is_batch_actor(model, model.actor("vec_add"), NEON)

    def test_unsupported_op_excluded(self):
        # integer division has no vector instruction on any target
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=8)
        y = b.inport("y", shape=8)
        d = b.add_actor("Div", "d", x, y)
        b.outport("o", d)
        model = b.build()
        assert not is_batch_actor(model, model.actor("d"), NEON)

    def test_float_div_supported_on_neon(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=8)
        y = b.inport("y", shape=8)
        d = b.add_actor("Div", "d", x, y)
        b.outport("o", d)
        model = b.build()
        assert is_batch_actor(model, model.actor("d"), NEON)

    def test_single_node_instruction_lookup(self):
        assert single_node_instruction(NEON, "Add", DataType.I32).name == "vaddq_s32"
        assert single_node_instruction(NEON, "Div", DataType.I32) is None
        cast = single_node_instruction(NEON, "Cast", DataType.F32, src_dtype=DataType.I32)
        assert cast.name == "vcvtq_f32_s32"


class TestGrouping:
    def test_connected_same_scale_grouped(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        y = b.inport("y", shape=16)
        m = b.add_actor("Mul", "m", x, y)
        a = b.add_actor("Add", "a", m, x)
        b.outport("o", a)
        result = _dispatch(b.build())
        assert len(result.groups) == 1
        assert set(result.groups[0].members) == {"m", "a"}
        assert result.groups[0].width == 16
        assert result.groups[0].bit_width == 32

    def test_different_widths_not_grouped(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        a = b.add_actor("Abs", "a", x)
        y = b.inport("y", shape=8)
        n = b.add_actor("Neg", "n", y)
        b.outport("o1", a)
        b.outport("o2", n)
        result = _dispatch(b.build())
        assert len(result.groups) == 2

    def test_disconnected_same_width_not_grouped(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        a = b.add_actor("Abs", "a", x)
        y = b.inport("y", shape=16)
        n = b.add_actor("Neg", "n", y)
        b.outport("o1", a)
        b.outport("o2", n)
        result = _dispatch(b.build())
        assert len(result.groups) == 2

    def test_cast_joins_group_same_bit_width(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        y = b.inport("y", shape=16)
        s = b.add_actor("Add", "s", x, y)
        c = b.add_actor("Cast", "c", s, dtype=DataType.F32, from_dtype="i32")
        sq = b.add_actor("Sqrt", "sq", c)
        b.outport("o", sq)
        result = _dispatch(b.build())
        assert len(result.groups) == 1
        assert set(result.groups[0].members) == {"s", "c", "sq"}

    def test_group_split_on_external_cycle(self):
        # A -> FFT -> C and A -> C: fusing {A, C} would require FFT both
        # after and before the group.
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=8)
        a = b.add_actor("Abs", "a", x)
        f = b.add_actor("FFT", "fft", a, n=8)
        # reduce the (2, 8) spectrum back to an 8-wide signal via Neg on a slice-like path
        # simpler: second chain consuming both a and another batch actor
        g = b.add_actor("Neg", "g", a)
        b.outport("o1", g)
        b.outport("o2", f)
        result = _dispatch(b.build())
        # a and g are connected and same scale: one group, no cycle here
        assert any(set(group.members) == {"a", "g"} for group in result.groups)

    def test_units_cover_all_actors_once(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        y = b.inport("y", shape=16)
        m = b.add_actor("Mul", "m", x, y)
        a = b.add_actor("Add", "a", m, x)
        b.outport("o", a)
        model = b.build()
        result = _dispatch(model)
        names = []
        for unit in result.units:
            if isinstance(unit, BatchGroup):
                names.extend(unit.members)
            else:
                names.append(unit)
        assert sorted(names) == sorted(actor.name for actor in model.actors)

    def test_units_respect_dependencies(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=8)
        a = b.add_actor("Abs", "a", x)          # group 1
        f = b.add_actor("FFT", "fft", a, n=8)   # intensive between groups
        b.outport("o", f)
        result = _dispatch(b.build())
        positions = {}
        for index, unit in enumerate(result.units):
            if isinstance(unit, BatchGroup):
                for member in unit.members:
                    positions[member] = index
            else:
                positions[unit] = index
        assert positions["a"] < positions["fft"] < positions["o"]
