"""Reproduction of the paper's Fig. 4 / Listing 1 end to end."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.codegen import HcgGenerator
from repro.dtypes import DataType
from repro.ir import SimdLoad, SimdOp, SimdStore, walk
from repro.ir.cemit import emit_c
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


def fig4_model(n=4):
    """Fig. 4(a): Sub = b - c; Shr = (a + Sub) >> 1; Add = Sub + Sub*d."""
    b = ModelBuilder("fig4", default_dtype=DataType.I32)
    a = b.inport("a", shape=n)
    bb = b.inport("b", shape=n)
    c = b.inport("c", shape=n)
    d = b.inport("d", shape=n)
    sub = b.add_actor("Sub", "sub", bb, c)
    add1 = b.add_actor("Add", "add1", a, sub)
    shr = b.add_actor("Shr", "shr", add1, shift=1)
    mul = b.add_actor("Mul", "mul", sub, d)
    add2 = b.add_actor("Add", "add2", sub, mul)
    b.outport("shr_out", shr)
    b.outport("add_out", add2)
    return b.build()


@pytest.fixture(scope="module")
def generated():
    model = fig4_model()
    generator = HcgGenerator(ARM_A72)
    return model, generator.generate(model)


class TestListing1:
    def test_selected_instructions(self, generated):
        """§3.2.2: vsubq_s32, vmlaq_s32 and vhaddq_s32 are selected."""
        _, program = generated
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert names == ["vsubq_s32", "vhaddq_s32", "vmlaq_s32"]

    def test_four_loads_two_stores(self, generated):
        """Listing 1: four vld1q loads, two vst1q stores."""
        _, program = generated
        loads = [s for s in walk(program.body) if isinstance(s, SimdLoad)]
        stores = [s for s in walk(program.body) if isinstance(s, SimdStore)]
        assert len(loads) == 4
        assert len(stores) == 2

    def test_sub_register_reused_not_reloaded(self, generated):
        """The Sub result feeds vhaddq and vmlaq straight from the
        register — the memory round-trip the baselines would pay."""
        _, program = generated
        ops = {s.instruction: s for s in walk(program.body) if isinstance(s, SimdOp)}
        sub_dest = ops["vsubq_s32"].dest
        assert sub_dest in ops["vhaddq_s32"].args
        assert ops["vmlaq_s32"].args.count(sub_dest) == 2  # acc and multiplicand

    def test_c_source_matches_listing1_shape(self, generated):
        _, program = generated
        source = emit_c(program, ARM_A72.instruction_set)
        for fragment in ("vld1q_s32", "vsubq_s32", "vhaddq_s32",
                         "vmlaq_s32", "vst1q_s32", "int32x4_t"):
            assert fragment in source, fragment

    def test_numerical_equivalence(self, generated):
        model, program = generated
        rng = np.random.default_rng(0)
        inputs = {k: rng.integers(-10_000, 10_000, size=4).astype(np.int32)
                  for k in "abcd"}
        ref = ModelEvaluator(model).step(inputs)
        got = Machine(program, ARM_A72).run(inputs).outputs
        assert np.array_equal(got["shr_out"], ref["shr_out"])
        assert np.array_equal(got["add_out"], ref["add_out"])

    def test_fig2_sample_model(self):
        """Fig. 2's width-4 model: (a*b + c) then reciprocal, f32."""
        b = ModelBuilder("fig2", default_dtype=DataType.F32)
        a = b.inport("a", shape=4)
        bb = b.inport("b", shape=4)
        c = b.inport("c", shape=4)
        m = b.add_actor("Mul", "m", a, bb)
        s = b.add_actor("Add", "s", m, c)
        r = b.add_actor("Recp", "r", s)
        b.outport("y", r)
        model = b.build()
        program = HcgGenerator(ARM_A72).generate(model)
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        # §1: "only two operations are required": vector multiply-add
        # plus vector reciprocal
        assert names == ["vmlaq_f32", "vrecpeq_f32"]
