"""Tests for the shared codegen machinery (folding, materialisation)."""

import pytest

from repro.codegen.common import (
    CodegenContext,
    element_expr,
    emit_outport,
    fanout_materialization_points,
    is_foldable,
    materialize_port,
    sanitize,
    store_elements,
)
from repro.dtypes import DataType
from repro.errors import CodegenError
from repro.ir import For, Load, ScalarOp, Select, Store, const_i
from repro.ir.types import BufferKind
from repro.model.builder import ModelBuilder


def _chain_model():
    b = ModelBuilder("m", default_dtype=DataType.I32)
    x = b.inport("x", shape=16)
    a = b.add_actor("Abs", "a", x)
    n = b.add_actor("Neg", "n", a)
    b.outport("y", n)
    return b.build()


class TestSanitize:
    def test_passthrough(self):
        assert sanitize("foo_bar1") == "foo_bar1"

    def test_specials_replaced(self):
        assert sanitize("a-b c.d") == "a_b_c_d"

    def test_leading_digit(self):
        assert sanitize("1st") == "_1st"

    def test_empty(self):
        assert sanitize("") == "_"


class TestContext:
    def test_fixed_buffers(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        assert ctx.program.buffer("x").kind is BufferKind.INPUT
        assert ctx.program.buffer("y").kind is BufferKind.OUTPUT

    def test_ensure_local_idempotent(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        first = ctx.ensure_local("a", "out")
        second = ctx.ensure_local("a", "out")
        assert first == second
        assert ctx.program.buffer(first).kind is BufferKind.LOCAL

    def test_buffer_of_missing(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        with pytest.raises(CodegenError, match="no buffer"):
            ctx.buffer_of("a", "out")

    def test_const_buffer_init(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        c = b.const("c", value=[3, 1, 4])
        b.outport("y", c)
        ctx = CodegenContext(b.build(), "p", "test")
        decl = ctx.program.buffer(ctx.buffer_of("c", "out"))
        assert decl.kind is BufferKind.CONST
        assert decl.init == (3.0, 1.0, 4.0)

    def test_state_buffer_init(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        d = b.add_actor("UnitDelay", "d", x, initial=7)
        b.outport("y", d)
        ctx = CodegenContext(b.build(), "p", "test")
        decl = ctx.program.buffer(ctx.buffer_of("d", "out"))
        assert decl.kind is BufferKind.STATE
        assert decl.init == (7.0,) * 4


class TestFolding:
    def test_chain_folds_to_nested_expr(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        expr = element_expr(ctx, ("n", "out"), const_i(0))
        # Neg(Abs(load x[0]))
        assert isinstance(expr, ScalarOp) and expr.op == "Neg"
        inner = expr.args[0]
        assert isinstance(inner, ScalarOp) and inner.op == "Abs"
        assert isinstance(inner.args[0], Load) and inner.args[0].buffer == "x"

    def test_materialized_port_loads(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        materialize_port(ctx, ("a", "out"))
        expr = element_expr(ctx, ("n", "out"), const_i(0))
        assert isinstance(expr.args[0], Load)
        assert expr.args[0].buffer == ctx.buffer_of("a", "out")

    def test_switch_folds_to_select(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=4)
        ctrl = b.inport("c")
        sw = b.add_actor("Switch", "sw", x, dtype=DataType.F32, shape=4, threshold=1.5)
        b.connect(ctrl, sw, "ctrl")
        b.connect(x, sw, "in2")
        b.outport("y", sw)
        ctx = CodegenContext(b.build(), "p", "test")
        expr = element_expr(ctx, ("sw", "out"), const_i(2))
        assert isinstance(expr, Select)

    def test_gain_folds_to_mul_by_const(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=4)
        g = b.add_actor("Gain", "g", x, gain=2.5)
        b.outport("y", g)
        ctx = CodegenContext(b.build(), "p", "test")
        expr = element_expr(ctx, ("g", "out"), const_i(0))
        assert isinstance(expr, ScalarOp) and expr.op == "Mul"

    def test_foldability(self):
        model = _chain_model()
        assert is_foldable(model.actor("a"))
        assert not is_foldable(model.actor("x"))


class TestStoreElements:
    def test_unrolled_below_limit(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        stmts = store_elements(ctx, "x", 4, lambda i: Load("x", i), unroll_limit=8)
        assert len(stmts) == 4 and all(isinstance(s, Store) for s in stmts)

    def test_loop_above_limit(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        stmts = store_elements(ctx, "x", 100, lambda i: Load("x", i), unroll_limit=8)
        assert len(stmts) == 1 and isinstance(stmts[0], For)


class TestMaterializationPoints:
    def test_fanout_detected(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        a = b.add_actor("Abs", "a", x)
        b.outport("y1", a)
        b.outport("y2", a)
        ctx = CodegenContext(b.build(), "p", "test")
        assert ("a", "out") in fanout_materialization_points(ctx)

    def test_single_consumer_not_a_point(self):
        ctx = CodegenContext(_chain_model(), "p", "test")
        points = fanout_materialization_points(ctx)
        assert ("a", "out") not in points and ("n", "out") not in points


class TestDelayChainStateOrder:
    """Fuzzer-found miscompile (tests/verify/corpus/
    repro_arm_a72_fuzz_s0_i75.json): when one UnitDelay feeds another,
    the end-of-step commits must read *pre-update* state — committing
    in schedule order leaked the upstream delay's fresh value into the
    downstream state in the same step."""

    def chain_model(self):
        b = ModelBuilder("chain", default_dtype=DataType.I32)
        c = b.const("c", value=[9])
        d0 = b.add_actor("UnitDelay", "d0", c, initial=0)
        d1 = b.add_actor("UnitDelay", "d1", d0, initial=0)
        b.outport("y", d1)
        return b.build()

    @pytest.mark.parametrize("generator", ["simulink_coder", "dfsynth", "hcg"])
    def test_back_to_back_delays_shift_not_teleport(self, generator):
        from repro.arch.presets import get_architecture
        from repro.bench.runner import make_generator
        from repro.vm.machine import Machine

        gen = make_generator(generator, get_architecture("arm_a72"))
        program = gen.generate(self.chain_model())
        machine = Machine(program, get_architecture("arm_a72"),
                          instruction_set=getattr(gen, "iset", None))
        # a 2-deep delay line delays the constant by two full steps
        seen = [int(machine.run({}).outputs["y"][0]) for _ in range(3)]
        assert seen == [0, 0, 9]

    def test_snapshot_only_emitted_for_delay_chains(self):
        from repro.codegen.common import emit_state_updates

        b = ModelBuilder("solo", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        b.outport("y", b.add_actor("UnitDelay", "d", x, initial=0))
        ctx = CodegenContext(b.build(), "p", "test")
        before = len(ctx.program.buffers)
        statements = emit_state_updates(ctx)
        # an independent delay keeps the old single-copy shape: no
        # scratch buffer, no snapshot copy
        assert len(ctx.program.buffers) == before
        assert len(statements) == 1
