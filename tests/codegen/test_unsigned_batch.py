"""Unsigned batch actors (u8/u16 image-style processing) through HCG."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.codegen import HcgGenerator
from repro.dtypes import DataType
from repro.ir import SimdOp, walk
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


def motion_detect_model(n=64):
    """|frame - background| accumulated: the classic vabd/vaba pattern."""
    b = ModelBuilder("motion", default_dtype=DataType.U8)
    frame = b.inport("frame", shape=n)
    background = b.inport("background", shape=n)
    acc = b.inport("acc", shape=n)
    diff = b.add_actor("Abd", "diff", frame, background)
    total = b.add_actor("Add", "total", diff, acc)
    b.outport("motion", total)
    return b.build()


def average_model(n=64, dtype=DataType.U8):
    """(a + b) >> 1 — the halving-add idiom."""
    b = ModelBuilder("avg", default_dtype=dtype)
    a = b.inport("a", shape=n)
    bb = b.inport("b", shape=n)
    s = b.add_actor("Add", "s", a, bb)
    h = b.add_actor("Shr", "h", s, shift=1)
    b.outport("avg", h)
    return b.build()


class TestUnsignedBatch:
    def test_vaba_selected_for_motion_detect(self):
        program = HcgGenerator(ARM_A72).generate(motion_detect_model())
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert names == ["vabaq_u8"]  # Abd + Add fused, 16 lanes

    def test_motion_detect_correct(self, rng):
        model = motion_detect_model(70)  # forces a remainder
        program = HcgGenerator(ARM_A72).generate(model)
        inputs = {k: rng.integers(0, 255, 70).astype(np.uint8)
                  for k in ("frame", "background", "acc")}
        want = ModelEvaluator(model).step(inputs)["motion"]
        got = Machine(program, ARM_A72).run(inputs).outputs["motion"]
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("dtype,instruction", [
        (DataType.U8, "vhaddq_u8"),
        (DataType.U16, "vhaddq_u16"),
        (DataType.U32, "vhaddq_u32"),
        (DataType.I16, "vhaddq_s16"),
    ])
    def test_halving_add_per_type(self, dtype, instruction, rng):
        model = average_model(64, dtype)
        program = HcgGenerator(ARM_A72).generate(model)
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert names == [instruction]
        inputs = {
            "a": rng.integers(0, dtype.max_value // 2, 64).astype(dtype.numpy_dtype),
            "b": rng.integers(0, dtype.max_value // 2, 64).astype(dtype.numpy_dtype),
        }
        want = ModelEvaluator(model).step(inputs)["avg"]
        got = Machine(program, ARM_A72).run(inputs).outputs["avg"]
        assert np.array_equal(got, want)

    def test_u8_wraparound_preserved(self):
        """C unsigned arithmetic wraps; the vectorised code must too."""
        model = average_model(16, DataType.U8)
        program = HcgGenerator(ARM_A72).generate(model)
        inputs = {"a": np.full(16, 200, np.uint8), "b": np.full(16, 100, np.uint8)}
        want = ModelEvaluator(model).step(inputs)["avg"]
        got = Machine(program, ARM_A72).run(inputs).outputs["avg"]
        # 200 + 100 wraps to 44; 44 >> 1 == 22 (matches NEON vhadd? no —
        # real vhadd widens internally, but our semantics is the C
        # expression (a + b) >> 1, consistently everywhere)
        assert np.array_equal(got, want)
        assert got[0] == 22

    def test_unsigned_shift_is_logical(self, rng):
        b = ModelBuilder("sh", default_dtype=DataType.U32)
        x = b.inport("x", shape=16)
        s = b.add_actor("Shr", "s", x, shift=1)
        b.outport("o", s)
        model = b.build()
        program = HcgGenerator(ARM_A72).generate(model)
        inputs = {"x": np.full(16, 2**31, np.uint32)}
        got = Machine(program, ARM_A72).run(inputs).outputs["o"]
        assert got[0] == 2**30
