"""Tests for branch-aware HCG (the §4.3 discussion extension)."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.bench.models import benchmark_inputs, highpass_model
from repro.codegen import HcgGenerator
from repro.codegen.hcg.dispatch import BatchGroup
from repro.compiler import GCC
from repro.dtypes import DataType
from repro.ir import For, If, SimdOp, walk
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


def _branchy_batch_model(n=16):
    """A batch chain exclusively feeding one side of a Switch."""
    b = ModelBuilder("bb", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    ctrl = b.inport("ctrl")
    squared = b.add_actor("Mul", "squared", x, x)
    negated = b.add_actor("Neg", "negated", squared)
    sw = b.add_actor("Switch", "sw", negated, dtype=DataType.F32, shape=n,
                     threshold=0.5)
    b.connect(ctrl, sw, "ctrl")
    b.connect(x, sw, "in2")
    b.outport("y", sw)
    return b.build()


class TestStructure:
    def test_switch_becomes_if(self):
        program = HcgGenerator(ARM_A72, branch_aware=True).generate(_branchy_batch_model())
        ifs = [s for s in program.body if isinstance(s, If)]
        assert len(ifs) == 1

    def test_exclusive_group_inside_branch(self):
        program = HcgGenerator(ARM_A72, branch_aware=True).generate(_branchy_batch_model())
        the_if = next(s for s in program.body if isinstance(s, If))
        then_simd = [s for s in walk(the_if.then_body) if isinstance(s, SimdOp)]
        assert then_simd, "the squared/negated group belongs in the then-branch"
        outside_simd = [
            s for s in walk([st for st in program.body if not isinstance(st, If)])
            if isinstance(s, SimdOp)
        ]
        assert not outside_simd

    def test_plain_mode_unchanged(self):
        program = HcgGenerator(ARM_A72, branch_aware=False).generate(_branchy_batch_model())
        assert not any(isinstance(s, If) for s in program.body)

    def test_groups_split_by_branch_info(self):
        """§4.3's Ptolemy constraint: same branch information required."""
        model = highpass_model(16)
        plain = HcgGenerator(ARM_A72, branch_aware=False)
        plain.generate(model)
        branchy = HcgGenerator(ARM_A72, branch_aware=True)
        branchy.generate(model)
        plain_sizes = sorted(len(g.members) for g in plain.last_dispatch.groups)
        branchy_sizes = sorted(len(g.members) for g in branchy.last_dispatch.groups)
        # plain fuses all four batch actors; branch-aware splits off 'hp'
        assert plain_sizes == [4]
        assert branchy_sizes == [1, 3]

    def test_switch_writes_outport_directly(self):
        program = HcgGenerator(ARM_A72, branch_aware=True).generate(_branchy_batch_model())
        # no bypass local buffer: the If stores into 'y' directly
        names = [b.name for b in program.buffers]
        assert "y" in names
        assert not any("sw" in n for n in names)


class TestCorrectness:
    @pytest.mark.parametrize("ctrl", [0.0, 1.0])
    def test_both_branches_match_reference(self, ctrl, rng):
        model = _branchy_batch_model(20)  # odd batch count + remainder
        program = GCC.compile(HcgGenerator(ARM_A72, branch_aware=True).generate(model))
        inputs = {"x": rng.uniform(-2, 2, 20).astype(np.float32),
                  "ctrl": np.float32(ctrl)}
        want = ModelEvaluator(model).step(inputs)["y"]
        got = Machine(program, ARM_A72, cost=GCC.effective_cost(ARM_A72)).run(inputs).outputs["y"]
        assert np.allclose(got, want, rtol=1e-5)

    @pytest.mark.parametrize("ctrl", [0.0, 1.0])
    def test_stateful_model_multi_step(self, ctrl):
        model = highpass_model(32)
        inputs = benchmark_inputs(model)
        inputs["ctrl"] = np.float32(ctrl)
        program = HcgGenerator(ARM_A72, branch_aware=True).generate(model)
        machine = Machine(program, ARM_A72)
        reference = ModelEvaluator(model)
        for step in range(4):
            want = reference.step(inputs)["y"]
            got = machine.run(inputs).outputs["y"]
            assert np.allclose(got, want, rtol=1e-5), step

    def test_untaken_branch_skipped(self, rng):
        model = _branchy_batch_model(1024)
        program = HcgGenerator(ARM_A72, branch_aware=True).generate(model)
        machine = Machine(program, ARM_A72)
        x = rng.uniform(-1, 1, 1024).astype(np.float32)
        taken = machine.run({"x": x, "ctrl": 1.0}).cycles
        bypass = machine.run({"x": x, "ctrl": 0.0}).cycles
        assert bypass < taken * 0.8


def _nested_switch_model(n=16):
    """An inner Switch exclusively feeding the outer Switch's then-side."""
    b = ModelBuilder("nested", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    c_outer = b.inport("c_outer")
    c_inner = b.inport("c_inner")
    expensive = b.add_actor("Sqrt", "expensive", x)
    doubled = b.add_actor("Add", "doubled", x, x)
    inner = b.add_actor("Switch", "inner", expensive, dtype=DataType.F32,
                        shape=n, threshold=0.5)
    b.connect(c_inner, inner, "ctrl")
    b.connect(doubled, inner, "in2")
    outer = b.add_actor("Switch", "outer", inner, dtype=DataType.F32,
                        shape=n, threshold=0.5)
    b.connect(c_outer, outer, "ctrl")
    b.connect(x, outer, "in2")
    b.outport("y", outer)
    return b.build()


class TestNestedSwitches:
    def test_regions_nest(self):
        from repro.schedule.regions import find_branch_regions

        regions = find_branch_regions(_nested_switch_model())
        by_key = {(r.switch, r.port): set(r.members) for r in regions}
        assert by_key[("inner", "in1")] == {"expensive"}
        assert by_key[("inner", "in2")] == {"doubled"}
        assert by_key[("outer", "in1")] == {"inner"}

    def test_dfsynth_emits_nested_ifs(self):
        from repro.codegen import DfsynthGenerator

        program = DfsynthGenerator(ARM_A72).generate(_nested_switch_model())
        outer_ifs = [s for s in program.body if isinstance(s, If)]
        assert len(outer_ifs) == 1
        inner_ifs = [s for s in walk(outer_ifs[0].then_body) if isinstance(s, If)]
        assert len(inner_ifs) == 1

    def test_hcg_branch_aware_emits_nested_ifs(self):
        program = HcgGenerator(ARM_A72, branch_aware=True).generate(
            _nested_switch_model()
        )
        outer_ifs = [s for s in program.body if isinstance(s, If)]
        assert len(outer_ifs) == 1
        inner_ifs = [s for s in walk(outer_ifs[0].then_body) if isinstance(s, If)]
        assert len(inner_ifs) == 1

    @pytest.mark.parametrize("c_outer", [0.0, 1.0])
    @pytest.mark.parametrize("c_inner", [0.0, 1.0])
    @pytest.mark.parametrize("generator_factory", [
        lambda: HcgGenerator(ARM_A72, branch_aware=True),
        lambda: HcgGenerator(ARM_A72),
        lambda: __import__("repro.codegen", fromlist=["DfsynthGenerator"]).DfsynthGenerator(ARM_A72),
    ])
    def test_all_branch_combinations_correct(self, c_outer, c_inner,
                                             generator_factory, rng):
        model = _nested_switch_model(20)
        program = generator_factory().generate(model)
        inputs = {
            "x": rng.uniform(0.1, 4.0, 20).astype(np.float32),
            "c_outer": np.float32(c_outer),
            "c_inner": np.float32(c_inner),
        }
        want = ModelEvaluator(model).step(inputs)["y"]
        got = Machine(program, ARM_A72).run(inputs).outputs["y"]
        assert np.allclose(got, want, rtol=1e-5)

    def test_inner_work_skipped_when_outer_bypasses(self, rng):
        model = _nested_switch_model(256)
        program = HcgGenerator(ARM_A72, branch_aware=True).generate(model)
        machine = Machine(program, ARM_A72)
        x = rng.uniform(0.1, 4.0, 256).astype(np.float32)
        full = machine.run({"x": x, "c_outer": 1.0, "c_inner": 1.0}).cycles
        bypass = machine.run({"x": x, "c_outer": 0.0, "c_inner": 1.0}).cycles
        assert bypass < full
