"""Tests for Algorithm 2 (batch synthesis)."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.codegen import HcgGenerator
from repro.codegen.hcg.batch import BatchSynthesizer
from repro.codegen.hcg.dispatch import dispatch
from repro.codegen.common import CodegenContext
from repro.dtypes import DataType
from repro.ir import (
    AssignVar,
    For,
    SimdLoad,
    SimdOp,
    SimdStore,
    Store,
    walk,
)
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


def _chain_model(n, dtype=DataType.I32):
    b = ModelBuilder("chain", default_dtype=dtype)
    x = b.inport("x", shape=n)
    y = b.inport("y", shape=n)
    m = b.add_actor("Mul", "m", x, y)
    a = b.add_actor("Add", "a", m, x)
    b.outport("o", a)
    return b.build()


def _generate(model, arch=ARM_A72, **kwargs):
    generator = HcgGenerator(arch, **kwargs)
    return generator, generator.generate(model)


def _run_and_check(model, program, arch=ARM_A72, seed=9):
    rng = np.random.default_rng(seed)
    inputs = {}
    for inport in model.inports:
        port = inport.output("out")
        if port.dtype.is_float:
            inputs[inport.name] = rng.uniform(-2, 2, size=port.shape or ()).astype(
                port.dtype.numpy_dtype)
        else:
            inputs[inport.name] = rng.integers(-99, 99, size=port.shape or ()).astype(
                port.dtype.numpy_dtype)
    ref = ModelEvaluator(model).step(inputs)
    out = Machine(program, arch).run(inputs).outputs
    for key, value in ref.items():
        got = out[key].reshape(value.shape)
        if value.dtype.kind == "f":
            assert np.allclose(got, value, rtol=1e-5, equal_nan=True), key
        else:
            assert np.array_equal(got, value), key


class TestLoopStructure:
    def test_loop_emitted_for_multiple_batches(self):
        _, program = _generate(_chain_model(64))
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        assert len(loops) == 1 and loops[0].step == 4  # i32 x 4 on NEON

    def test_single_batch_is_straight_line(self):
        _, program = _generate(_chain_model(4))
        assert not any(isinstance(s, For) for s in walk(program.body))
        assert any(isinstance(s, SimdOp) for s in walk(program.body))

    def test_remainder_in_front_of_loop(self):
        _, program = _generate(_chain_model(10))  # 10 = 2 remainder + 2 batches
        kinds = [type(s).__name__ for s in program.body]
        first_scalar = next(i for i, s in enumerate(program.body) if isinstance(s, AssignVar))
        first_loop = next(i for i, s in enumerate(program.body) if isinstance(s, For))
        assert first_scalar < first_loop
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        # loop starts at the offset
        assert loops[0].start.value == 2

    def test_remainder_correctness(self):
        for n in (5, 6, 7, 9, 1027):
            model = _chain_model(n)
            _, program = _generate(model)
            _run_and_check(model, program)

    def test_too_narrow_falls_back_to_conventional(self):
        gen, program = _generate(_chain_model(3))  # < 4 lanes
        assert not any(isinstance(s, SimdOp) for s in walk(program.body))
        _run_and_check(_chain_model(3), program)

    def test_simd_threshold_option(self):
        """§4.3: a profitability threshold can disable narrow groups."""
        _, vectorised = _generate(_chain_model(8))
        assert any(isinstance(s, SimdOp) for s in walk(vectorised.body))
        _, thresholded = _generate(_chain_model(8), simd_threshold=64)
        assert not any(isinstance(s, SimdOp) for s in walk(thresholded.body))
        _run_and_check(_chain_model(8), thresholded)


class TestStorePolicy:
    def test_internal_values_stay_in_registers(self):
        _, program = _generate(_chain_model(64))
        stores = [s for s in walk(program.body) if isinstance(s, SimdStore)]
        # only 'a' (the outport feed) is stored; 'm' stays in a register
        assert len(stores) == 1

    def test_fanout_to_outside_forces_store(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        y = b.inport("y", shape=16)
        m = b.add_actor("Mul", "m", x, y)
        a = b.add_actor("Add", "a", m, x)
        b.outport("o1", a)
        b.outport("o2", m)  # m escapes the group
        model = b.build()
        _, program = _generate(model)
        stores = [s for s in walk(program.body) if isinstance(s, SimdStore)]
        assert len(stores) == 2
        _run_and_check(model, program)


class TestInstructionSelection:
    def test_compound_preferred_over_singles(self):
        gen, program = _generate(_chain_model(64))
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert names == ["vmlaq_s32"]  # Mul+Add fused

    def test_every_node_mapped_exactly_once(self):
        model = _chain_model(64)
        gen, _ = _generate(model)
        mapped = [m for match in gen.last_batch.matches for m in match.subgraph.members]
        assert sorted(mapped) == ["a", "m"]

    def test_basic_only_isa_uses_two_instructions(self):
        basic = ARM_A72.instruction_set.restricted(max_nodes=1)
        gen, program = _generate(_chain_model(64), instruction_set=basic)
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert sorted(names) == ["vaddq_s32", "vmulq_s32"]
        _run_and_check(_chain_model(64), program)

    def test_cast_chain_vectorised(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        y = b.inport("y", shape=16)
        s = b.add_actor("Add", "s", x, y)
        c = b.add_actor("Cast", "c", s, dtype=DataType.F32, from_dtype="i32")
        q = b.add_actor("Sqrt", "q", c)
        b.outport("o", q)
        model = b.build()
        gen, program = _generate(model)
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert "vcvtq_f32_s32" in names and "vsqrtq_f32" in names
        _run_and_check(model, program)

    def test_wildcard_shift_amount_emitted(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=16)
        s = b.add_actor("Shl", "s", x, shift=3)
        b.outport("o", s)
        model = b.build()
        _, program = _generate(model)
        op = next(s for s in walk(program.body) if isinstance(s, SimdOp))
        assert op.instruction == "vshlq_n_s32" and op.imm == 3
        _run_and_check(model, program)

    def test_avx2_wider_batches(self):
        model = _chain_model(64, dtype=DataType.F32)
        _, program = _generate(model, arch=INTEL_I7_8700)
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        assert loops[0].step == 8  # f32 x 8 on AVX2
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert names == ["vfmadd231ps"]
        _run_and_check(model, program, arch=INTEL_I7_8700)

    def test_integer_mla_missing_on_avx2(self):
        """x86 has no integer multiply-add: two instructions needed."""
        model = _chain_model(64, dtype=DataType.I32)
        _, program = _generate(model, arch=INTEL_I7_8700)
        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert sorted(names) == ["vpaddd", "vpmulld"]
        _run_and_check(model, program, arch=INTEL_I7_8700)

    def test_paper_listing1_names_style(self):
        """Registers are named after actors, as in Listing 1."""
        _, program = _generate(_chain_model(64))
        op = next(s for s in walk(program.body) if isinstance(s, SimdOp))
        assert "_batch" in op.dest


class TestSixteenLanes:
    def test_i8_uses_sixteen_lanes(self):
        b = ModelBuilder("m", default_dtype=DataType.I8)
        x = b.inport("x", shape=64)
        y = b.inport("y", shape=64)
        d = b.add_actor("Abd", "d", x, y)
        b.outport("o", d)
        model = b.build()
        _, program = _generate(model)
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        assert loops[0].step == 16
        _run_and_check(model, program)
