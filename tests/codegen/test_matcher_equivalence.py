"""Differential tests: the indexed and naive matchers must select
cost-identical (in fact byte-identical) programs everywhere.

Three layers:

* the seven committed model files x three ISA presets;
* fuzzed models drawn from the ``repro verify`` fuzzer's seed scheme
  (the same generator the CI fuzz leg runs);
* the synthetic benchmark cascade at a non-trivial size.
"""

from pathlib import Path

import pytest

from repro.api import GenerateRequest, generate
from repro.codegen.options import CodegenOptions

MODELS_DIR = Path(__file__).resolve().parents[2] / "models"
ARCHS = ("arm_a72", "intel_i7_8700_sse4", "intel_i7_8700")


def _load_model(path: Path):
    if path.suffix == ".mdl":
        from repro.model.mdl_io import read_mdl

        try:
            return read_mdl(path)
        except Exception:
            return read_mdl(path, default_width=8)
    from repro.model.xml_io import read_model

    return read_model(path)


def _emit(model, arch, matcher):
    request = GenerateRequest(
        model=model, options=CodegenOptions(arch=arch, matcher=matcher)
    )
    return generate(request).c_source


@pytest.mark.parametrize("arch", ARCHS)
@pytest.mark.parametrize(
    "model_file", sorted(p.name for p in MODELS_DIR.iterdir())
)
def test_committed_models_emit_identically(model_file, arch):
    model = _load_model(MODELS_DIR / model_file)
    assert _emit(model, arch, "indexed") == _emit(model, arch, "naive")


@pytest.mark.parametrize("index", range(20))
def test_fuzzed_models_emit_identically(index):
    from repro.arch.presets import get_architecture
    from repro.verify.fuzz import random_spec

    arch = ARCHS[index % len(ARCHS)]
    lanes = max(get_architecture(arch).instruction_set.vector_bits // 32, 2)
    spec = random_spec(seed=0, index=index, lanes=lanes)
    model = spec.build()
    assert _emit(model, arch, "indexed") == _emit(model, arch, "naive"), spec


@pytest.mark.parametrize("arch", ARCHS)
def test_synthetic_cascade_emits_identically(arch):
    from repro.bench.synthetic import synthetic_cascade

    model = synthetic_cascade(64)
    assert _emit(model, arch, "indexed") == _emit(model, arch, "naive")


def test_matcher_cells_catch_divergence(monkeypatch):
    """matcher_cells raises when the two matchers' outputs disagree."""
    import numpy as np

    from repro.bench import synthetic
    from repro.errors import ReproError

    real = np.array_equal
    monkeypatch.setattr(np, "array_equal", lambda *a, **k: False)
    try:
        with pytest.raises(ReproError, match="divergence"):
            synthetic.matcher_cells(8, "arm_a72", "gcc", steps=1)
    finally:
        monkeypatch.setattr(np, "array_equal", real)


def test_matcher_cells_agree_and_record_counters():
    from repro.bench.synthetic import matcher_cells

    cells = matcher_cells(32, "arm_a72", "gcc", steps=1)
    indexed, naive = cells["hcg_indexed"], cells["hcg_naive"]
    assert indexed.cycles_per_step == naive.cycles_per_step
    assert indexed.metrics["alg2.match.wall_s"] > 0
    assert naive.metrics["alg2.match.wall_s"] > 0
    assert indexed.metrics["alg2.match.rounds"] > 0
