"""Tests for Algorithm 1 (intensive synthesis) and the selection history."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.codegen.hcg.history import SelectionHistory, SelectionKey, size_signature
from repro.codegen.hcg.intensive import IntensiveSynthesizer, generate_test_input
from repro.dtypes import DataType
from repro.kernels import default_library
from repro.model.actor_defs import create_actor


def _fft_actor(n):
    return create_actor("fft", "FFT", DataType.F32, {"n": n})


def _synth(history=None):
    return IntensiveSynthesizer(
        default_library(), ARM_A72.cost, ARM_A72.instruction_set, history
    )


class TestSizeSignature:
    def test_signature_contents(self):
        assert size_signature({"n": 8, "other": "x"}) == (("n", 8),)
        assert size_signature({"rows": 4, "cols": 8}) == (("rows", 4), ("cols", 8))

    def test_key_round_trip(self):
        key = SelectionKey("fft", DataType.F32, (("n", 1024),))
        assert SelectionKey.from_str(key.to_str()) == key


class TestSelectionHistory:
    def test_miss_then_hit(self):
        history = SelectionHistory()
        key = SelectionKey("fft", DataType.F32, (("n", 8),))
        assert history.lookup(key) is None
        history.store(key, "fft.radix2")
        assert history.lookup(key) == "fft.radix2"
        assert history.hits == 1 and history.misses == 1

    def test_persistence(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        key = SelectionKey("dct", DataType.F64, (("n", 64),))
        history.store(key, "dct.lee")
        reloaded = SelectionHistory(path)
        assert reloaded.lookup(key) == "dct.lee"

    def test_clear(self):
        history = SelectionHistory()
        history.store(SelectionKey("fft", DataType.F32, ()), "fft.mixed")
        history.clear()
        assert len(history) == 0


class TestGenerateTestInput:
    def test_shapes_match_ports(self):
        arrays = generate_test_input(_fft_actor(16), seed=1)
        assert len(arrays) == 1 and arrays[0].shape == (16,)
        assert arrays[0].dtype == np.float32

    def test_matinv_input_invertible(self):
        actor = create_actor("mi", "MatInv", DataType.F64, {"n": 4})
        (matrix,) = generate_test_input(actor, seed=2)
        assert abs(np.linalg.det(matrix.astype(np.float64))) > 1e-6

    def test_integer_ports_get_integers(self):
        actor = create_actor("c", "Conv", DataType.I32, {"n": 8, "m": 3})
        arrays = generate_test_input(actor, seed=3)
        assert arrays[0].dtype == np.int32


class TestAlgorithm1:
    def test_pow2_fft_selects_radix_simd(self):
        synth = _synth()
        kernel = synth.select(_fft_actor(1024))
        assert kernel.kernel_id == "fft.radix4_simd"  # the paper's §3 example

    def test_non_pow2_selects_mixed(self):
        synth = _synth()
        kernel = synth.select(_fft_actor(100))
        assert kernel.kernel_id == "fft.mixed_simd"

    def test_selection_is_argmin_of_measurements(self):
        synth = _synth()
        synth.select(_fft_actor(256))
        record = synth.records[-1]
        assert record.chosen == min(record.measured, key=record.measured.get)

    def test_out_of_domain_impls_filtered(self):
        synth = _synth()
        synth.select(_fft_actor(100))
        measured = synth.records[-1].measured
        assert "fft.radix2" not in measured  # 100 is not a power of two
        assert "fft.radix4" not in measured

    def test_history_short_circuits(self):
        history = SelectionHistory()
        synth = _synth(history)
        first = synth.select(_fft_actor(64))
        again = synth.select(_fft_actor(64))
        assert first.kernel_id == again.kernel_id
        assert synth.records[-1].from_history
        assert not synth.records[-1].measured  # no pre-calculation ran

    def test_different_sizes_not_conflated(self):
        history = SelectionHistory()
        synth = _synth(history)
        synth.select(_fft_actor(64))
        synth.select(_fft_actor(100))
        assert len(history) == 2

    def test_conv_adaptivity(self):
        """Direct conv wins short taps; FFT conv wins long-long."""
        synth = _synth()
        short = create_actor("c1", "Conv", DataType.F32, {"n": 256, "m": 4})
        long = create_actor("c2", "Conv", DataType.F32, {"n": 1024, "m": 1024})
        assert "direct" in synth.select(short).kernel_id
        assert "fft" in synth.select(long).kernel_id

    def test_matmul_small_selects_unrolled(self):
        synth = _synth()
        actor = create_actor("mm", "MatMul", DataType.F32, {"n": 4})
        assert "unrolled" in synth.select(actor).kernel_id or "simd" in synth.select(actor).kernel_id

    def test_deterministic_across_runs(self):
        a = _synth().select(_fft_actor(512)).kernel_id
        b = _synth().select(_fft_actor(512)).kernel_id
        assert a == b
