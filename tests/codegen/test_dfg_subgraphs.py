"""Tests for the batch dataflow graph and subgraph matching (Alg. 2 internals)."""

import pytest

from repro.arch import ARM_A72
from repro.codegen.common import CodegenContext
from repro.codegen.hcg.dfg import ExtInput, NodeInput, build_dfg
from repro.codegen.hcg.dispatch import dispatch
from repro.codegen.hcg.subgraphs import (
    extend_subgraphs,
    is_convex,
    is_independent,
    match_instruction,
    subgraph_cost,
    top_left_node,
    Subgraph,
)
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder

NEON = ARM_A72.instruction_set


def _fig4_ctx():
    """The paper's Fig. 4 model: Sub feeds both a halving-add chain and
    a multiply-accumulate chain."""
    b = ModelBuilder("fig4", default_dtype=DataType.I32)
    a = b.inport("a", shape=8)
    bb = b.inport("b", shape=8)
    c = b.inport("c", shape=8)
    d = b.inport("d", shape=8)
    sub = b.add_actor("Sub", "sub", bb, c)
    add1 = b.add_actor("Add", "add1", a, sub)
    shr = b.add_actor("Shr", "shr", add1, shift=1)
    mul = b.add_actor("Mul", "mul", sub, d)
    add2 = b.add_actor("Add", "add2", sub, mul)
    b.outport("shr_out", shr)
    b.outport("add_out", add2)
    model = b.build()
    ctx = CodegenContext(model, "p", "test")
    result = dispatch(model, ctx.schedule, NEON)
    (group,) = result.groups
    return ctx, build_dfg(ctx, group)


class TestDfgConstruction:
    def test_nodes_in_schedule_order(self):
        _, dfg = _fig4_ctx()
        assert [n.name for n in dfg.nodes] == ["sub", "add1", "shr", "mul", "add2"]

    def test_external_inputs(self):
        _, dfg = _fig4_ctx()
        keys = [e.key[0] for e in dfg.external_inputs]
        assert keys == ["b", "c", "a", "d"]  # first-use order

    def test_internal_edges(self):
        _, dfg = _fig4_ctx()
        sub = dfg.node("sub")
        assert set(sub.internal_consumers) == {"add1", "mul", "add2"}
        add1 = dfg.node("add1")
        assert any(isinstance(r, NodeInput) and r.node == "sub" for r in add1.inputs)

    def test_needs_store_only_for_escaping_values(self):
        _, dfg = _fig4_ctx()
        stored = {n.name for n in dfg.stored_nodes}
        assert stored == {"shr", "add2"}  # outport consumers only

    def test_shift_imm_recorded(self):
        _, dfg = _fig4_ctx()
        assert dfg.node("shr").imm == 1


class TestTopLeftAndEnumeration:
    def test_top_left_is_earliest_unmapped(self):
        _, dfg = _fig4_ctx()
        assert top_left_node(dfg, set()) == "sub"
        assert top_left_node(dfg, {"sub"}) == "add1"
        assert top_left_node(dfg, {n.name for n in dfg.nodes}) is None

    def test_paper_extension_example(self):
        """§3.2.2: 'three subgraphs will be extended from the Sub node,
        which are Sub-Mul, Sub-Add and Sub'."""
        _, dfg = _fig4_ctx()
        candidates = extend_subgraphs(dfg, "sub", set(), max_nodes=2, max_depth=2)
        sets = {frozenset(s.members) for s in candidates}
        assert frozenset({"sub"}) in sets
        assert frozenset({"sub", "mul"}) in sets
        assert frozenset({"sub", "add1"}) in sets

    def test_sub_add2_rejected_nonconvex(self):
        """{sub, add2} is not convex: the path sub -> mul -> add2 leaves
        and re-enters the set."""
        _, dfg = _fig4_ctx()
        candidates = extend_subgraphs(dfg, "sub", set(), max_nodes=2, max_depth=2)
        sets = {frozenset(s.members) for s in candidates}
        assert frozenset({"sub", "add2"}) not in sets

    def test_multi_escape_candidate_enumerated_but_unmatched(self):
        """Sub-Mul is listed by the paper as an extension of Sub, but it
        cannot be implemented: both Sub's and Mul's values are needed."""
        _, dfg = _fig4_ctx()
        candidates = extend_subgraphs(dfg, "sub", set(), max_nodes=2, max_depth=2)
        sub_mul = next(s for s in candidates if s.members == frozenset({"sub", "mul"}))
        assert sub_mul.sink is None
        assert match_instruction(dfg, sub_mul, NEON, set()) is None

    def test_sorted_by_cost_descending(self):
        _, dfg = _fig4_ctx()
        candidates = extend_subgraphs(dfg, "sub", set(), max_nodes=2, max_depth=2)
        costs = [s.cost for s in candidates]
        assert costs == sorted(costs, reverse=True)

    def test_mul_add_pair_after_sub_mapped(self):
        _, dfg = _fig4_ctx()
        candidates = extend_subgraphs(dfg, "add1", {"sub"}, max_nodes=2, max_depth=2)
        sets = {frozenset(s.members) for s in candidates}
        assert frozenset({"add1", "shr"}) in sets  # the vhadd pair


class TestValidityPredicates:
    def test_independence(self):
        _, dfg = _fig4_ctx()
        # {add2} depends on mul which is neither mapped nor a member
        assert not is_independent(dfg, frozenset({"add2"}), set())
        assert is_independent(dfg, frozenset({"add2"}), {"sub", "mul"})
        assert is_independent(dfg, frozenset({"mul", "add2"}), {"sub"})

    def test_convexity(self):
        _, dfg = _fig4_ctx()
        # {sub, add2}: path sub -> mul -> add2 passes outside the set
        assert not is_convex(dfg, frozenset({"sub", "add2"}))
        assert is_convex(dfg, frozenset({"sub", "mul", "add2"}))

    def test_cost_sums_op_weights(self):
        _, dfg = _fig4_ctx()
        assert subgraph_cost(dfg, frozenset({"sub"})) == 1.0
        assert subgraph_cost(dfg, frozenset({"sub", "mul"})) == 4.0


class TestMatching:
    def test_single_node_match(self):
        _, dfg = _fig4_ctx()
        sub = Subgraph(frozenset({"sub"}), "sub", 1.0)
        match = match_instruction(dfg, sub, NEON, set())
        assert match is not None and match.spec.name == "vsubq_s32"
        # args in instruction-token order: I1=b, I2=c
        assert [a.key[0] for a in match.args] == ["b", "c"]

    def test_vhadd_compound_match(self):
        _, dfg = _fig4_ctx()
        pair = Subgraph(frozenset({"add1", "shr"}), "shr", 2.0)
        match = match_instruction(dfg, pair, NEON, {"sub"})
        assert match is not None and match.spec.name == "vhaddq_s32"

    def test_vmla_compound_match_with_mapped_input(self):
        _, dfg = _fig4_ctx()
        pair = Subgraph(frozenset({"mul", "add2"}), "add2", 4.0)
        match = match_instruction(dfg, pair, NEON, {"sub"})
        assert match is not None and match.spec.name == "vmlaq_s32"

    def test_no_match_without_mapped_producer(self):
        _, dfg = _fig4_ctx()
        pair = Subgraph(frozenset({"mul", "add2"}), "add2", 4.0)
        # sub not yet mapped: the I tokens cannot bind to it
        assert match_instruction(dfg, pair, NEON, set()) is None

    def test_commutative_match(self):
        # Add(ext, node) should match Add patterns regardless of operand order
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=8)
        y = b.inport("y", shape=8)
        m = b.add_actor("Mul", "m", x, y)
        # note: node result is the SECOND operand here
        a = b.add_actor("Add", "a", y, m)
        b.outport("o", a)
        model = b.build()
        ctx = CodegenContext(model, "p", "t")
        (group,) = dispatch(model, ctx.schedule, NEON).groups
        dfg = build_dfg(ctx, group)
        pair = Subgraph(frozenset({"m", "a"}), "a", 4.0)
        match = match_instruction(dfg, pair, NEON, set())
        assert match is not None and match.spec.name == "vmlaq_s32"

    def test_wildcard_imm_bound(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=8)
        s = b.add_actor("Shr", "s", x, shift=3)
        b.outport("o", s)
        model = b.build()
        ctx = CodegenContext(model, "p", "t")
        (group,) = dispatch(model, ctx.schedule, NEON).groups
        dfg = build_dfg(ctx, group)
        match = match_instruction(dfg, Subgraph(frozenset({"s"}), "s", 1.0), NEON, set())
        assert match is not None
        assert match.spec.name == "vshrq_n_s32"
        assert match.imm == 3

    def test_cheapest_match_wins(self):
        """Among instructions matching the same subgraph, pick min cost."""
        _, dfg = _fig4_ctx()
        sub = Subgraph(frozenset({"sub"}), "sub", 1.0)
        match = match_instruction(dfg, sub, NEON, set())
        competitors = [
            spec for spec in NEON.instructions
            if spec.node_count == 1 and spec.root.op == "Sub"
            and spec.dtype is dfg.node("sub").dtype
        ]
        assert match.spec.cost == min(s.cost for s in competitors)
