"""Unit tests for the indexed subgraph matcher (repro.codegen.hcg.matchindex)."""

import itertools

import pytest

from repro.arch import ARM_A72, INTEL_I7_8700, INTEL_I7_8700_SSE4
from repro.codegen.common import CodegenContext
from repro.codegen.hcg.dfg import build_dfg
from repro.codegen.hcg.dispatch import dispatch
from repro.codegen.hcg.matchindex import (
    IndexedGroupMatcher,
    NaiveGroupMatcher,
    PatternTrie,
    connected_sets,
    make_matcher,
    pattern_trie,
)
from repro.codegen.hcg.subgraphs import is_convex, top_left_node
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder

NEON = ARM_A72.instruction_set


def _fig4_dfg(iset=NEON):
    """The paper's Fig. 4 model: Sub feeds both a halving-add chain and
    a multiply-accumulate chain (fan-out, compound candidates)."""
    b = ModelBuilder("fig4", default_dtype=DataType.I32)
    a = b.inport("a", shape=8)
    bb = b.inport("b", shape=8)
    c = b.inport("c", shape=8)
    d = b.inport("d", shape=8)
    sub = b.add_actor("Sub", "sub", bb, c)
    add1 = b.add_actor("Add", "add1", a, sub)
    shr = b.add_actor("Shr", "shr", add1, shift=1)
    mul = b.add_actor("Mul", "mul", sub, d)
    add2 = b.add_actor("Add", "add2", sub, mul)
    b.outport("shr_out", shr)
    b.outport("add_out", add2)
    model = b.build()
    ctx = CodegenContext(model, "p", "test")
    (group,) = dispatch(model, ctx.schedule, iset).groups
    return build_dfg(ctx, group)


class TestPatternTrie:
    def test_lookup_hits_known_root(self):
        trie = PatternTrie(NEON)
        spec = NEON.by_name("vaddq_s32")
        found = trie.lookup(spec.root.op, spec.dtype, spec.lanes, spec.node_count)
        assert spec in found

    def test_lookup_sorted_cheapest_first(self):
        trie = PatternTrie(NEON)
        for spec in NEON.instructions:
            leaf = trie.lookup(spec.root.op, spec.dtype, spec.lanes, spec.node_count)
            costs = [s.cost for s in leaf]
            assert costs == sorted(costs)

    def test_lookup_missing_key_is_empty(self):
        trie = PatternTrie(NEON)
        assert trie.lookup("NoSuchOp", DataType.I32, 4, 1) == ()
        assert trie.lookup("Add", DataType.I32, 4, 99) == ()

    def test_every_instruction_reachable(self):
        trie = PatternTrie(NEON)
        assert len(trie) == len(NEON.instructions)
        for spec in NEON.instructions:
            assert spec in trie.lookup(
                spec.root.op, spec.dtype, spec.lanes, spec.node_count
            )

    def test_sizes_prefix_matches_lookup(self):
        trie = PatternTrie(NEON)
        spec = NEON.by_name("vmlaq_s32")
        leaf = trie.sizes(spec.root.op, spec.dtype, spec.lanes)
        assert leaf[spec.node_count] == trie.lookup(
            spec.root.op, spec.dtype, spec.lanes, spec.node_count
        )
        assert trie.sizes("NoSuchOp", DataType.I32, 4) == {}

    def test_pattern_trie_cached_per_iset(self):
        assert pattern_trie(NEON) is pattern_trie(NEON)
        assert pattern_trie(NEON) is not pattern_trie(INTEL_I7_8700.instruction_set)


class TestConnectedSets:
    def _reference(self, dfg, max_nodes):
        """Brute force: every subset of <= max_nodes nodes that induces
        a connected undirected graph."""
        names = [n.name for n in dfg.nodes]
        neighbours = {name: set() for name in names}
        for node in dfg.nodes:
            for consumer in node.internal_consumers:
                neighbours[node.name].add(consumer)
                neighbours[consumer].add(node.name)
        out = set()
        for size in range(1, max_nodes + 1):
            for combo in itertools.combinations(names, size):
                members = set(combo)
                frontier = [combo[0]]
                seen = {combo[0]}
                while frontier:
                    for peer in neighbours[frontier.pop()]:
                        if peer in members and peer not in seen:
                            seen.add(peer)
                            frontier.append(peer)
                if seen == members:
                    out.add(frozenset(members))
        return out

    @pytest.mark.parametrize("max_nodes", [1, 2, 3])
    def test_matches_brute_force(self, max_nodes):
        dfg = _fig4_dfg()
        assert connected_sets(dfg, max_nodes) == self._reference(dfg, max_nodes)

    def test_convexity_agrees_with_reference(self):
        dfg = _fig4_dfg()
        matcher = IndexedGroupMatcher(dfg, NEON)
        for members in connected_sets(dfg, 3):
            assert matcher.is_convex(members) == is_convex(dfg, members), members


def _drive(matcher, dfg):
    """Run the Algorithm 2 loop to completion, returning the matches."""
    mapped = set()
    matches = []
    while True:
        seed = top_left_node(dfg, mapped)
        if seed is None:
            return matches
        match = matcher.match_from(seed, mapped)
        assert match is not None
        matches.append(match)
        mapped |= match.subgraph.members
        matcher.invalidate(match.subgraph.members)


class TestIndexedMatcher:
    def test_pool_candidates_are_convex_single_sink(self):
        dfg = _fig4_dfg()
        matcher = IndexedGroupMatcher(dfg, NEON)
        assert matcher.enumerated == len(matcher._pool) > 0
        for candidate in matcher._pool:
            assert is_convex(dfg, frozenset(candidate.member_names))
            assert candidate.sink in candidate.member_names

    def test_invalidate_kills_overlapping_candidates(self):
        dfg = _fig4_dfg()
        matcher = IndexedGroupMatcher(dfg, NEON)
        before = matcher.live_candidates
        removed = matcher.invalidate({"sub"})
        assert removed > 0
        assert matcher.live_candidates == before - removed
        # every dead candidate overlaps the accepted set
        for cid, alive in enumerate(matcher._alive):
            candidate = matcher._pool[cid]
            if "sub" in candidate.member_names:
                assert not alive
            else:
                assert alive

    def test_match_never_returns_invalidated_members(self):
        dfg = _fig4_dfg()
        matcher = IndexedGroupMatcher(dfg, NEON)
        first = matcher.match_from("sub", set())
        assert first is not None and "sub" in first.subgraph.members
        mapped = set(first.subgraph.members)
        matcher.invalidate(first.subgraph.members)
        seed = top_left_node(dfg, mapped)
        again = matcher.match_from(seed, mapped)
        assert again is not None
        assert not (again.subgraph.members & mapped)

    def test_incremental_rematch_equals_naive_sequence(self):
        for iset in (NEON, INTEL_I7_8700.instruction_set,
                     INTEL_I7_8700_SSE4.instruction_set):
            dfg = _fig4_dfg(iset)
            indexed = _drive(IndexedGroupMatcher(dfg, iset), dfg)
            naive = _drive(NaiveGroupMatcher(dfg, iset), dfg)
            assert [(m.spec.name, m.subgraph.members, m.args, m.imm)
                    for m in indexed] == \
                   [(m.spec.name, m.subgraph.members, m.args, m.imm)
                    for m in naive]

    def test_match_from_tolerates_external_mapped_set(self):
        # Direct callers may advance `mapped` without invalidate();
        # the matcher must fall back to recomputing the mapped mask.
        dfg = _fig4_dfg()
        matcher = IndexedGroupMatcher(dfg, NEON)
        reference = NaiveGroupMatcher(dfg, NEON)
        mapped = {"sub"}
        got = matcher.match_from("mul", mapped)
        want = reference.match_from("mul", mapped)
        assert got is not None and want is not None
        assert (got.spec.name, got.subgraph.members) == \
               (want.spec.name, want.subgraph.members)

    def test_counters_flushed_to_tracer(self):
        from repro.observability.tracer import Tracer

        dfg = _fig4_dfg()
        tracer = Tracer()
        matcher = IndexedGroupMatcher(dfg, NEON, tracer)
        _drive(matcher, dfg)
        matcher.flush_counters()
        counters = tracer.counters
        assert counters["alg2.subgraphs_enumerated"] == matcher.enumerated
        assert counters["alg2.match.rounds"] == matcher.rounds > 0
        assert counters["alg2.match.invalidated"] == matcher.invalidated > 0


class TestMakeMatcher:
    def test_dispatches_both_kinds(self):
        dfg = _fig4_dfg()
        assert make_matcher("indexed", dfg, NEON).kind == "indexed"
        assert make_matcher("naive", dfg, NEON).kind == "naive"

    def test_unknown_kind_raises(self):
        dfg = _fig4_dfg()
        with pytest.raises(ValueError, match="indexed"):
            make_matcher("quantum", dfg, NEON)
