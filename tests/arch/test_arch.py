"""Tests for architecture descriptors and cost tables."""

import pytest

from repro.arch import (
    ARM_A72,
    Architecture,
    CostBreakdown,
    CostTable,
    INTEL_I7_8700,
    INTEL_I7_8700_SSE4,
    get_architecture,
    preset_names,
)


class TestCostTable:
    def test_scalar_op_uses_base_cost(self):
        table = CostTable(scalar_scale=2.0)
        assert table.scalar_op("Add") == 2.0  # base 1.0 * 2

    def test_scalar_override_wins(self):
        table = CostTable(scalar_overrides={"Div": 42.0})
        assert table.scalar_op("Div") == 42.0

    def test_simd_op_scales_spec_cost(self):
        spec = ARM_A72.instruction_set.by_name("vdivq_f32")
        table = CostTable(simd_scale=2.0)
        assert table.simd_op(spec) == spec.cost * 2.0

    def test_scaled_applies_throughput(self):
        table = CostTable(throughput_factor=0.5)
        assert table.scaled(100.0) == 50.0


class TestCostBreakdown:
    def test_charge_and_total(self):
        breakdown = CostBreakdown()
        breakdown.charge("scalar_ops", 3.0, "op:Add")
        breakdown.charge("simd_mem", 5.0, "vload")
        assert breakdown.total == 8.0
        assert breakdown.counts == {"op:Add": 1, "vload": 1}

    def test_merged(self):
        a = CostBreakdown()
        a.charge("loop", 2.0, "loop_iter")
        b = CostBreakdown()
        b.charge("loop", 3.0, "loop_iter")
        b.charge("kernel", 10.0)
        merged = a.merged(b)
        assert merged.loop == 5.0
        assert merged.kernel == 10.0
        assert merged.counts["loop_iter"] == 2

    def test_as_dict_keys(self):
        keys = set(CostBreakdown().as_dict())
        assert "total" in keys and "simd_ops" in keys


class TestPresets:
    def test_lookup(self):
        assert get_architecture("arm_a72") is ARM_A72
        assert set(preset_names()) == {
            "arm_a72", "intel_i7_8700", "intel_i7_8700_sse4",
            "riscv_u74", "intel_xeon_8380",
        }

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            get_architecture("mips")

    def test_instruction_sets_resolve(self):
        assert ARM_A72.instruction_set.arch == "neon"
        assert INTEL_I7_8700.instruction_set.arch == "avx2"
        assert INTEL_I7_8700_SSE4.instruction_set.arch == "sse4"
        assert get_architecture("riscv_u74").instruction_set.arch == "rvv"
        assert get_architecture("intel_xeon_8380").instruction_set.arch == "avx512"

    def test_vector_bits(self):
        assert ARM_A72.vector_bits == 128
        assert INTEL_I7_8700.vector_bits == 256
        assert get_architecture("riscv_u74").vector_bits == 256
        assert get_architecture("intel_xeon_8380").vector_bits == 512

    def test_masked_tail_presets(self):
        # the new targets expose masked-tail capable instruction sets
        # with a non-zero per-statement predication cost
        for name in ("riscv_u74", "intel_xeon_8380"):
            arch = get_architecture(name)
            assert arch.instruction_set.supports_masked_tail
            assert arch.cost.mask_overhead > 0
        assert not ARM_A72.instruction_set.supports_masked_tail
        assert ARM_A72.cost.mask_overhead == 0.0

    def test_cycles_to_seconds(self):
        seconds = ARM_A72.cycles_to_seconds(1.5e9, iterations=1)
        assert seconds == pytest.approx(1.0)
        assert ARM_A72.cycles_to_seconds(1.5e9, iterations=10) == pytest.approx(10.0)

    def test_paper_setup_flags(self):
        # §4.2: scattered-SIMD behaviour is an Intel toolchain trait
        assert not ARM_A72.baseline_scattered_simd
        assert INTEL_I7_8700.baseline_scattered_simd

    def test_intel_runs_faster_per_cycle(self):
        assert INTEL_I7_8700.cost.throughput_factor < ARM_A72.cost.throughput_factor
        assert INTEL_I7_8700.clock_ghz > ARM_A72.clock_ghz
