"""Tests for the classic Simulink .mdl reader (subset)."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.codegen import HcgGenerator
from repro.dtypes import DataType
from repro.errors import ModelParseError
from repro.model.mdl_io import model_from_mdl, parse_mdl, read_mdl
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine

FIR_MDL = """
Model {
  Name  "fir_stage"
  System {
    Block {
      BlockType  Inport
      Name       "x"
      Port       "1"
    }
    Block {
      BlockType  Constant
      Name       "h"
      Value      "[3 -1 4 -1 5 -9 2 6]"
    }
    Block {
      BlockType  Product
      Name       "weighted"
      Inputs     "2"
    }
    Block {
      BlockType  UnitDelay
      Name       "acc_state"
      X0         "0"
    }
    Block {
      BlockType  Sum
      Name       "acc"
      Inputs     "++"
    }
    Block {
      BlockType  Outport
      Name       "y"
      Port       "1"
    }
    Line {
      SrcBlock  "x"
      SrcPort   1
      DstBlock  "weighted"
      DstPort   1
    }
    Line {
      SrcBlock  "h"
      SrcPort   1
      DstBlock  "weighted"
      DstPort   2
    }
    Line {
      SrcBlock  "weighted"
      SrcPort   1
      DstBlock  "acc"
      DstPort   1
    }
    Line {
      SrcBlock  "acc_state"
      SrcPort   1
      DstBlock  "acc"
      DstPort   2
    }
    Line {
      SrcBlock  "acc"
      SrcPort   1
      Branch {
        DstBlock  "y"
        DstPort   1
      }
      Branch {
        DstBlock  "acc_state"
        DstPort   1
      }
    }
  }
}
"""

SWITCH_MDL = """
Model {
  Name "clipper"
  System {
    Block { BlockType Inport  Name "sig"  Port "1" }
    Block { BlockType Inport  Name "sel"  Port "2" }
    Block { BlockType Abs     Name "mag" }
    Block {
      BlockType Switch
      Name      "pick"
      Threshold "0.5"
    }
    Block { BlockType Outport Name "out" Port "1" }
    Line { SrcBlock "sig" SrcPort 1
      Branch { DstBlock "mag"  DstPort 1 }
      Branch { DstBlock "pick" DstPort 3 }
    }
    Line { SrcBlock "mag" SrcPort 1 DstBlock "pick" DstPort 1 }
    Line { SrcBlock "sel" SrcPort 1 DstBlock "pick" DstPort 2 }
    Line { SrcBlock "pick" SrcPort 1 DstBlock "out" DstPort 1 }
  }
}
"""


class TestParser:
    def test_tree_structure(self):
        root = parse_mdl(FIR_MDL)
        model = root.child("Model")
        assert model.get("Name") == "fir_stage"
        system = model.child("System")
        assert len(system.all("Block")) == 6
        assert len(system.all("Line")) == 5

    def test_quoted_strings_unescaped(self):
        root = parse_mdl('Model { Name "with \\"quotes\\"" }')
        assert root.child("Model").get("Name") == 'with "quotes"'

    def test_unbalanced_braces(self):
        with pytest.raises(ModelParseError, match="unbalanced"):
            parse_mdl("Model { System {")
        with pytest.raises(ModelParseError, match="unbalanced"):
            parse_mdl("Model { } }")

    def test_missing_sections(self):
        with pytest.raises(ModelParseError, match="no Model"):
            model_from_mdl("NotAModel { }")
        with pytest.raises(ModelParseError, match="no System"):
            model_from_mdl("Model { Name \"m\" }")


class TestConversion:
    def test_fir_structure(self):
        model = model_from_mdl(FIR_MDL, dtype=DataType.I32,
                               port_widths={"x": 8})
        assert model.name == "fir_stage"
        assert model.actor("weighted").actor_type == "Mul"
        assert model.actor("acc").actor_type == "Add"
        assert model.actor("acc_state").actor_type == "UnitDelay"
        assert model.actor("weighted").output("out").width == 8

    def test_branch_fanout_wired(self):
        model = model_from_mdl(FIR_MDL, dtype=DataType.I32, port_widths={"x": 8})
        consumers = {c.dst_actor for c in model.consumers_of("acc", "out")}
        assert consumers == {"y", "acc_state"}

    def test_semantics_match_builder_equivalent(self):
        model = model_from_mdl(FIR_MDL, dtype=DataType.I32, port_widths={"x": 8})
        evaluator = ModelEvaluator(model)
        h = np.array([3, -1, 4, -1, 5, -9, 2, 6], dtype=np.int32)
        x = np.arange(8, dtype=np.int32)
        first = evaluator.step({"x": x})["y"]
        assert np.array_equal(first, x * h)            # delay still zero
        second = evaluator.step({"x": x})["y"]
        assert np.array_equal(second, 2 * x * h)       # accumulated once

    def test_switch_port_mapping(self):
        model = model_from_mdl(SWITCH_MDL, dtype=DataType.F32,
                               port_widths={"sig": 4, "sel": 1})
        pick = model.actor("pick")
        assert pick.actor_type == "Switch"
        assert model.driver_of("pick", "ctrl").src_actor == "sel"
        out = ModelEvaluator(model).step(
            {"sig": np.array([-1, 2, -3, 4], np.float32), "sel": 1.0}
        )["out"]
        assert list(out) == [1, 2, 3, 4]               # abs side taken

    def test_mdl_model_generates_simd(self):
        model = model_from_mdl(FIR_MDL, dtype=DataType.I32, port_widths={"x": 8})
        generator = HcgGenerator(ARM_A72)
        program = generator.generate(model)
        from repro.ir import SimdOp, walk

        names = [s.instruction for s in walk(program.body) if isinstance(s, SimdOp)]
        assert names == ["vmlaq_s32"]  # the paper's FIR observation, from .mdl
        x = np.arange(8, dtype=np.int32)
        got = Machine(program, ARM_A72).run({"x": x}).outputs["y"]
        want = ModelEvaluator(model).step({"x": x})["y"]
        assert np.array_equal(got, want)

    def test_file_reading(self, tmp_path):
        path = tmp_path / "fir.mdl"
        path.write_text(FIR_MDL)
        model = read_mdl(path, dtype=DataType.I32, port_widths={"x": 8})
        assert model.name == "fir_stage"
        with pytest.raises(ModelParseError, match="cannot read"):
            read_mdl(tmp_path / "missing.mdl")

    def test_unsupported_block_type(self):
        text = """
        Model { Name "m" System {
          Block { BlockType SFunction Name "magic" }
        } }
        """
        with pytest.raises(ModelParseError, match="unsupported .mdl BlockType"):
            model_from_mdl(text)

    def test_sum_sign_validation(self):
        text = """
        Model { Name "m" System {
          Block { BlockType Inport Name "a" }
          Block { BlockType Sum Name "s" Inputs "+++" }
          Block { BlockType Outport Name "o" }
          Line { SrcBlock "a" SrcPort 1 DstBlock "s" DstPort 1 }
          Line { SrcBlock "s" SrcPort 1 DstBlock "o" DstPort 1 }
        } }
        """
        with pytest.raises(ModelParseError, match="unsupported Inputs"):
            model_from_mdl(text)
