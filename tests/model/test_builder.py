"""Tests for the fluent model builder."""

import pytest

from repro.dtypes import DataType
from repro.errors import ModelError
from repro.model.builder import ModelBuilder


class TestBuilder:
    def test_dtype_and_shape_inference_from_inputs(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=8, dtype=DataType.F32)
        neg = b.add_actor("Neg", "n", x)
        assert neg.actor.output("out").dtype is DataType.F32
        assert neg.actor.output("out").shape == (8,)

    def test_default_dtype_used_without_inputs(self):
        b = ModelBuilder("m", default_dtype=DataType.I16)
        x = b.inport("x", shape=4)
        assert x.actor.output("out").dtype is DataType.I16

    def test_too_many_inputs_rejected(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        with pytest.raises(ModelError, match="input port"):
            b.add_actor("Abs", "a", x, x)

    def test_port_selection_getitem(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        ref = x["out"]
        assert ref.port == "out"
        assert ref.actor is x.actor

    def test_explicit_connect(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=4)
        ctrl = b.inport("c")
        sw = b.add_actor("Switch", "sw", x, dtype=DataType.F32, shape=4)
        b.connect(ctrl, sw, "ctrl")
        b.connect(x, sw, "in2")
        b.outport("y", sw)
        model = b.build()
        assert model.driver_of("sw", "ctrl").src_actor == "c"

    def test_build_validates(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        b.add_actor("Add", "s", x)  # in2 left undriven
        with pytest.raises(ModelError, match="not driven"):
            b.build()
        # but can skip validation for staged construction
        assert b.build(validate=False).name == "m"

    def test_const_shorthand(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        c = b.const("c", value=[[1, 2], [3, 4]])
        assert c.actor.output("out").shape == (2, 2)

    def test_tuple_shape(self):
        b = ModelBuilder("m", default_dtype=DataType.F64)
        x = b.inport("x", shape=(2, 3))
        assert x.actor.output("out").width == 6
