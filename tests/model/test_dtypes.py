"""Tests for the DataType enum."""

import numpy as np
import pytest

from repro.dtypes import (
    DataType,
    FLOAT_TYPES,
    INTEGER_TYPES,
    SIGNED_INTEGER_TYPES,
    c_type_name,
)


class TestDataType:
    def test_from_name(self):
        assert DataType.from_name("i32") is DataType.I32
        assert DataType.from_name(" F64 ") is DataType.F64

    def test_from_name_invalid(self):
        with pytest.raises(ValueError, match="unknown data type"):
            DataType.from_name("i33")

    @pytest.mark.parametrize("dtype,bits", [
        (DataType.I8, 8), (DataType.U16, 16), (DataType.I32, 32),
        (DataType.U64, 64), (DataType.F32, 32), (DataType.F64, 64),
    ])
    def test_bit_width(self, dtype, bits):
        assert dtype.bit_width == bits
        assert dtype.byte_width == bits // 8

    def test_float_flags(self):
        assert DataType.F32.is_float and not DataType.F32.is_integer
        assert DataType.I32.is_integer and not DataType.I32.is_float

    def test_signedness(self):
        assert DataType.I8.is_signed
        assert not DataType.U8.is_signed
        assert DataType.F64.is_signed

    def test_numpy_round_trip(self):
        for dtype in DataType:
            arr = np.zeros(2, dtype=dtype.numpy_dtype)
            assert arr.itemsize == dtype.byte_width

    def test_min_max_values(self):
        assert DataType.I8.min_value == -128
        assert DataType.I8.max_value == 127
        assert DataType.U16.min_value == 0
        assert DataType.U16.max_value == 65535
        assert DataType.F32.max_value > 1e38

    def test_groupings(self):
        assert DataType.F32 in FLOAT_TYPES
        assert DataType.I32 in INTEGER_TYPES
        assert DataType.U32 not in SIGNED_INTEGER_TYPES
        assert set(FLOAT_TYPES) | set(INTEGER_TYPES) == set(DataType)


class TestCTypeName:
    @pytest.mark.parametrize("dtype,name", [
        (DataType.I8, "int8_t"), (DataType.U8, "uint8_t"),
        (DataType.I32, "int32_t"), (DataType.U64, "uint64_t"),
        (DataType.F32, "float"), (DataType.F64, "double"),
    ])
    def test_names(self, dtype, name):
        assert c_type_name(dtype) == name
