"""Per-type tests of the actor registry and reference semantics."""

import numpy as np
import pytest

from repro.dtypes import DataType
from repro.errors import ModelError
from repro.model.actor_defs import (
    ActorKind,
    actor_def,
    create_actor,
    registered_types,
)


class TestRegistry:
    def test_unknown_type(self):
        with pytest.raises(ModelError, match="unknown actor type"):
            actor_def("Quux")

    def test_paper_table1_types_present(self):
        types = set(registered_types())
        # Table 1(a): intensive computing actors
        assert {"MatMul", "MatInv", "MatDet", "FFT", "IFFT", "FFT2D",
                "IFFT2D", "DCT", "IDCT", "DCT2D", "IDCT2D", "Conv",
                "Conv2D"} <= types
        # Table 1(b): batch computing actors
        assert {"Add", "Sub", "Mul", "Div", "Shr", "Shl", "BitNot",
                "BitAnd", "BitOr", "BitXor", "Min", "Max", "Abs", "Abd",
                "Recp", "Sqrt"} <= types

    def test_kinds(self):
        assert actor_def("FFT").kind is ActorKind.INTENSIVE
        assert actor_def("Add").kind is ActorKind.ELEMENTWISE
        assert actor_def("Inport").kind is ActorKind.SOURCE
        assert actor_def("Outport").kind is ActorKind.SINK
        assert actor_def("Switch").kind is ActorKind.BASIC
        assert actor_def("UnitDelay").stateful

    def test_kernel_keys(self):
        assert actor_def("FFT").kernel_key == "fft"
        assert actor_def("Conv2D").kernel_key == "conv2d"
        assert actor_def("Add").kernel_key is None


def _evaluate(actor, inputs):
    return actor_def(actor.actor_type).evaluate(actor, inputs, {})


class TestElementwiseActors:
    def test_add_ports(self):
        actor = create_actor("a", "Add", DataType.I32, {"shape": (4,)})
        assert len(actor.inputs) == 2
        assert actor.output("out").shape == (4,)

    def test_shr_requires_shift(self):
        with pytest.raises(ModelError, match="shift"):
            create_actor("s", "Shr", DataType.I32, {"shape": (4,)})

    def test_shr_shift_range_checked(self):
        with pytest.raises(ModelError, match="out of range"):
            create_actor("s", "Shr", DataType.I8, {"shape": (4,), "shift": 9})

    def test_bitand_rejects_float(self):
        with pytest.raises(ModelError, match="does not support"):
            create_actor("b", "BitAnd", DataType.F32, {"shape": (4,)})

    def test_recp_rejects_int(self):
        with pytest.raises(ModelError, match="does not support"):
            create_actor("r", "Recp", DataType.I32, {"shape": (4,)})

    def test_evaluate_elementwise(self):
        actor = create_actor("m", "Mul", DataType.I16, {"shape": (3,)})
        out = _evaluate(actor, {
            "in1": np.array([1, 2, 3], np.int16),
            "in2": np.array([4, 5, 6], np.int16),
        })["out"]
        assert list(out) == [4, 10, 18]

    def test_cast_actor(self):
        actor = create_actor("c", "Cast", DataType.F32,
                             {"shape": (2,), "from_dtype": "i32"})
        assert actor.input("in1").dtype is DataType.I32
        out = _evaluate(actor, {"in1": np.array([1, 2], np.int32)})["out"]
        assert out.dtype == np.float32


class TestBasicActors:
    def test_const_shape_from_value(self):
        actor = create_actor("c", "Const", DataType.I32, {"value": [1, 2, 3]})
        assert actor.output("out").shape == (3,)
        assert list(_evaluate(actor, {})["out"]) == [1, 2, 3]

    def test_const_requires_value(self):
        with pytest.raises(ModelError, match="'value'"):
            create_actor("c", "Const", DataType.I32, {})

    def test_gain(self):
        actor = create_actor("g", "Gain", DataType.F32, {"shape": (2,), "gain": 2.5})
        out = _evaluate(actor, {"in1": np.array([2.0, 4.0], np.float32)})["out"]
        assert list(out) == [5.0, 10.0]

    def test_switch_takes_first_when_ctrl_ge_threshold(self):
        actor = create_actor("s", "Switch", DataType.F32, {"shape": (2,), "threshold": 1.0})
        first = np.array([1.0, 2.0], np.float32)
        second = np.array([3.0, 4.0], np.float32)
        chosen = _evaluate(actor, {"in1": first, "ctrl": np.float32(1.0), "in2": second})["out"]
        assert list(chosen) == [1.0, 2.0]
        chosen = _evaluate(actor, {"in1": first, "ctrl": np.float32(0.5), "in2": second})["out"]
        assert list(chosen) == [3.0, 4.0]

    def test_unit_delay_initial_and_update(self):
        actor = create_actor("d", "UnitDelay", DataType.I32, {"shape": (2,), "initial": 9})
        state = {}
        defn = actor_def("UnitDelay")
        out1 = defn.evaluate(actor, {"in1": np.array([1, 2], np.int32)}, state)["out"]
        assert list(out1) == [9, 9]
        out2 = defn.evaluate(actor, {"in1": np.array([3, 4], np.int32)}, state)["out"]
        assert list(out2) == [1, 2]


class TestIntensiveActors:
    def test_fft_shapes(self):
        actor = create_actor("f", "FFT", DataType.F32, {"n": 8})
        assert actor.input("in1").shape == (8,)
        assert actor.output("out").shape == (2, 8)

    def test_fft_rejects_int(self):
        with pytest.raises(ModelError, match="float"):
            create_actor("f", "FFT", DataType.I32, {"n": 8})

    def test_fft_semantics(self, rng):
        actor = create_actor("f", "FFT", DataType.F64, {"n": 16})
        x = rng.normal(size=16)
        out = _evaluate(actor, {"in1": x})["out"]
        ref = np.fft.fft(x)
        assert np.allclose(out[0] + 1j * out[1], ref)

    def test_ifft_round_trip(self, rng):
        x = rng.normal(size=8)
        fft = create_actor("f", "FFT", DataType.F64, {"n": 8})
        spectrum = _evaluate(fft, {"in1": x})["out"]
        ifft = create_actor("i", "IFFT", DataType.F64, {"n": 8})
        back = _evaluate(ifft, {"in1": spectrum})["out"]
        assert np.allclose(back[0], x)
        assert np.allclose(back[1], 0.0, atol=1e-12)

    def test_dct_idct_round_trip(self, rng):
        x = rng.normal(size=16)
        dct = create_actor("d", "DCT", DataType.F64, {"n": 16})
        coeffs = _evaluate(dct, {"in1": x})["out"]
        idct = create_actor("i", "IDCT", DataType.F64, {"n": 16})
        back = _evaluate(idct, {"in1": coeffs})["out"]
        assert np.allclose(back, x)

    def test_conv_matches_numpy(self, rng):
        actor = create_actor("c", "Conv", DataType.F64, {"n": 10, "m": 4})
        a = rng.normal(size=10)
        b = rng.normal(size=4)
        out = _evaluate(actor, {"in1": a, "in2": b})["out"]
        assert out.shape == (13,)
        assert np.allclose(out, np.convolve(a, b))

    def test_conv_integer_wraps(self):
        actor = create_actor("c", "Conv", DataType.I32, {"n": 2, "m": 2})
        a = np.array([2**30, 0], np.int32)
        b = np.array([4, 0], np.int32)
        out = _evaluate(actor, {"in1": a, "in2": b})["out"]
        assert out[0] == 0  # wrapped

    def test_matmul(self, rng):
        actor = create_actor("m", "MatMul", DataType.F64, {"n": 3})
        a = rng.normal(size=(3, 3))
        b = rng.normal(size=(3, 3))
        out = _evaluate(actor, {"in1": a, "in2": b})["out"]
        assert np.allclose(out, a @ b)

    def test_matinv(self, rng):
        actor = create_actor("m", "MatInv", DataType.F64, {"n": 4})
        a = rng.normal(size=(4, 4)) + 4 * np.eye(4)
        out = _evaluate(actor, {"in1": a})["out"]
        assert np.allclose(out @ a, np.eye(4), atol=1e-8)

    def test_matdet_scalar_output(self, rng):
        actor = create_actor("m", "MatDet", DataType.F64, {"n": 2})
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = _evaluate(actor, {"in1": a})["out"]
        assert out.shape == ()
        assert np.isclose(out, -2.0)

    def test_fft2d_semantics(self, rng):
        actor = create_actor("f", "FFT2D", DataType.F64, {"rows": 4, "cols": 8})
        x = rng.normal(size=(4, 8))
        out = _evaluate(actor, {"in1": x})["out"]
        ref = np.fft.fft2(x)
        assert np.allclose(out[0] + 1j * out[1], ref)

    def test_dct2d_idct2d_round_trip(self, rng):
        x = rng.normal(size=(4, 4))
        dct = create_actor("d", "DCT2D", DataType.F64, {"rows": 4, "cols": 4})
        coeffs = _evaluate(dct, {"in1": x})["out"]
        idct = create_actor("i", "IDCT2D", DataType.F64, {"rows": 4, "cols": 4})
        back = _evaluate(idct, {"in1": coeffs})["out"]
        assert np.allclose(back, x)

    def test_conv2d_full_output(self, rng):
        actor = create_actor(
            "c", "Conv2D", DataType.F64,
            {"rows": 5, "cols": 6, "krows": 2, "kcols": 3},
        )
        a = rng.normal(size=(5, 6))
        k = rng.normal(size=(2, 3))
        out = _evaluate(actor, {"in1": a, "in2": k})["out"]
        assert out.shape == (6, 8)
        # spot-check one interior element against the definition
        r, c = 3, 4
        expected = sum(
            k[i, j] * a[r - i, c - j]
            for i in range(2) for j in range(3)
            if 0 <= r - i < 5 and 0 <= c - j < 6
        )
        assert np.isclose(out[r, c], expected)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ModelError):
            create_actor("f", "FFT", DataType.F32, {"n": 0})
        with pytest.raises(ModelError):
            create_actor("m", "MatMul", DataType.F32, {"n": -1})
