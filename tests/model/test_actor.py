"""Tests for actors and ports."""

import pytest

from repro.dtypes import DataType
from repro.errors import PortError
from repro.model.actor import Actor, Port, PortDirection


class TestPort:
    def test_scalar_port(self):
        port = Port("in1", PortDirection.IN, DataType.I32)
        assert port.width == 1
        assert not port.is_array
        assert "scalar" in str(port)

    def test_vector_port(self):
        port = Port("out", PortDirection.OUT, DataType.F32, (8,))
        assert port.width == 8
        assert port.is_array

    def test_matrix_port_width(self):
        port = Port("out", PortDirection.OUT, DataType.F64, (3, 4))
        assert port.width == 12

    def test_invalid_shape(self):
        with pytest.raises(PortError, match="non-positive"):
            Port("p", PortDirection.IN, DataType.I32, (0,))


class TestActor:
    def test_add_ports_and_lookup(self):
        actor = Actor("a", "Add")
        actor.add_input("in1", DataType.I32, (4,))
        actor.add_output("out", DataType.I32, (4,))
        assert actor.input("in1").width == 4
        assert actor.output("out").name == "out"

    def test_duplicate_port_rejected(self):
        actor = Actor("a", "Add")
        actor.add_input("in1", DataType.I32)
        with pytest.raises(PortError, match="already has"):
            actor.add_input("in1", DataType.I32)

    def test_missing_port_error_names_actor(self):
        actor = Actor("my_actor", "Add")
        with pytest.raises(PortError, match="my_actor"):
            actor.input("nope")
        with pytest.raises(PortError, match="my_actor"):
            actor.output("nope")

    def test_input_output_order_preserved(self):
        actor = Actor("a", "Switch")
        for name in ("in1", "ctrl", "in2"):
            actor.add_input(name, DataType.F32)
        assert [p.name for p in actor.inputs] == ["in1", "ctrl", "in2"]

    def test_array_input_detection(self):
        actor = Actor("a", "Add")
        actor.add_input("in1", DataType.I32)
        assert not actor.has_array_input
        actor.add_input("in2", DataType.I32, (4,))
        assert actor.has_array_input
        assert actor.max_input_width == 4

    def test_params_accessor(self):
        actor = Actor("a", "Gain", {"gain": 3})
        assert actor.param("gain") == 3
        assert actor.param("missing", 7) == 7
