"""Tests for the model graph: connections, validation, traversal."""

import pytest

from repro.dtypes import DataType
from repro.errors import ConnectionError_, ModelError
from repro.model.actor_defs import create_actor
from repro.model.builder import ModelBuilder
from repro.model.graph import Model


def _two_actor_model():
    model = Model("m")
    model.add_actor(create_actor("src", "Inport", DataType.I32, {"shape": (4,)}))
    model.add_actor(create_actor("dst", "Outport", DataType.I32, {"shape": (4,)}))
    return model


class TestConstruction:
    def test_duplicate_actor_name(self):
        model = _two_actor_model()
        with pytest.raises(ModelError, match="already contains"):
            model.add_actor(create_actor("src", "Inport", DataType.I32, {"shape": (4,)}))

    def test_connect_and_driver(self):
        model = _two_actor_model()
        model.connect("src", "out", "dst", "in1")
        driver = model.driver_of("dst", "in1")
        assert driver is not None and driver.src_actor == "src"

    def test_double_drive_rejected(self):
        model = _two_actor_model()
        model.connect("src", "out", "dst", "in1")
        model.add_actor(create_actor("src2", "Inport", DataType.I32, {"shape": (4,)}))
        with pytest.raises(ConnectionError_, match="already driven"):
            model.connect("src2", "out", "dst", "in1")

    def test_dtype_mismatch_rejected(self):
        model = Model("m")
        model.add_actor(create_actor("src", "Inport", DataType.F32, {"shape": (4,)}))
        model.add_actor(create_actor("dst", "Outport", DataType.I32, {"shape": (4,)}))
        with pytest.raises(ConnectionError_, match="dtype mismatch"):
            model.connect("src", "out", "dst", "in1")

    def test_shape_mismatch_rejected(self):
        model = Model("m")
        model.add_actor(create_actor("src", "Inport", DataType.I32, {"shape": (4,)}))
        model.add_actor(create_actor("dst", "Outport", DataType.I32, {"shape": (8,)}))
        with pytest.raises(ConnectionError_, match="shape mismatch"):
            model.connect("src", "out", "dst", "in1")

    def test_fanout_allowed(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        b.outport("y1", x)
        b.outport("y2", x)
        model = b.build()
        assert len(model.consumers_of("x", "out")) == 2


class TestValidation:
    def test_empty_model(self):
        with pytest.raises(ModelError, match="empty"):
            Model("m").validate()

    def test_undriven_input(self):
        model = _two_actor_model()
        with pytest.raises(ModelError, match="not driven"):
            model.validate()

    def test_algebraic_loop_detected(self):
        b = ModelBuilder("loop", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        a1 = b.add_actor("Add", "a1", x, x)  # placeholder wiring
        model = b.model
        # rewire: a2 = a1 + a2 (self cycle through a2)
        a2 = b.add_actor("Add", "a2", a1)
        model.connect("a2", "out", "a2", "in2")
        with pytest.raises(ModelError, match="algebraic loop"):
            model.validate()

    def test_delay_breaks_cycle(self):
        b = ModelBuilder("ok", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        d = b.add_actor("UnitDelay", "d", dtype=DataType.I32, shape=4)
        s = b.add_actor("Add", "s", x, d)
        b.connect(s, d, "in1")
        b.outport("y", s)
        b.build()  # must not raise


class TestTraversal:
    def test_predecessors_successors(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        y = b.inport("y", shape=4)
        s = b.add_actor("Add", "s", x, y)
        b.outport("o", s)
        model = b.build()
        assert set(model.predecessors("s")) == {"x", "y"}
        assert model.successors("s") == ("o",)
        assert model.successors("o") == ()

    def test_inports_outports(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=4)
        b.outport("o", x)
        model = b.build()
        assert [a.name for a in model.inports] == ["x"]
        assert [a.name for a in model.outports] == ["o"]
