"""Tests for the XML model format."""

import numpy as np
import pytest

from repro.bench.models import benchmark_suite
from repro.dtypes import DataType
from repro.errors import ModelParseError
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.model.xml_io import (
    model_from_string,
    model_to_string,
    read_model,
    write_model,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["FFT", "DCT", "Conv", "HighPass", "LowPass", "FIR"])
    def test_benchmark_models_round_trip(self, name, rng):
        # scale down so evaluation is quick
        from repro.bench import models as bm

        factory = bm.BENCHMARK_MODELS[name]
        model = factory()
        text = model_to_string(model)
        restored = model_from_string(text)
        assert restored.name == model.name
        assert len(restored.actors) == len(model.actors)
        assert len(restored.connections) == len(model.connections)

    def test_round_trip_preserves_semantics(self, rng):
        b = ModelBuilder("rt", default_dtype=DataType.I32)
        x = b.inport("x", shape=5)
        c = b.const("c", value=[1, 2, 3, 4, 5])
        s = b.add_actor("Sub", "s", x, c)
        h = b.add_actor("Shr", "h", s, shift=1)
        b.outport("y", h)
        model = b.build()
        restored = model_from_string(model_to_string(model))
        inputs = {"x": rng.integers(-100, 100, size=5).astype(np.int32)}
        out_a = ModelEvaluator(model).step(inputs)["y"]
        out_b = ModelEvaluator(restored).step(inputs)["y"]
        assert np.array_equal(out_a, out_b)

    def test_file_round_trip(self, tmp_path):
        b = ModelBuilder("f", default_dtype=DataType.F32)
        x = b.inport("x", shape=4)
        b.outport("y", x)
        model = b.build()
        path = tmp_path / "model.xml"
        write_model(model, path)
        restored = read_model(path)
        assert restored.name == "f"

    def test_cast_from_dtype_round_trips(self):
        b = ModelBuilder("c", default_dtype=DataType.F32)
        x = b.inport("x", shape=4, dtype=DataType.I32)
        cast = b.add_actor("Cast", "cast", x, dtype=DataType.F32, from_dtype="i32")
        b.outport("y", cast)
        restored = model_from_string(model_to_string(b.build()))
        assert restored.actor("cast").input("in1").dtype is DataType.I32


class TestErrors:
    def test_bad_xml(self):
        with pytest.raises(ModelParseError, match="cannot parse"):
            model_from_string("<model name='x'")

    def test_wrong_root(self):
        with pytest.raises(ModelParseError, match="expected <model>"):
            model_from_string("<thing/>")

    def test_missing_name(self):
        with pytest.raises(ModelParseError, match="missing a 'name'"):
            model_from_string("<model/>")

    def test_actor_missing_attrs(self):
        with pytest.raises(ModelParseError, match="require"):
            model_from_string("<model name='m'><actor name='a'/></model>")

    def test_bad_dtype(self):
        with pytest.raises(ModelParseError, match="unknown data type"):
            model_from_string(
                "<model name='m'><actor name='a' type='Inport' dtype='i12'/></model>"
            )

    def test_bad_param_literal(self):
        with pytest.raises(ModelParseError, match="invalid parameter"):
            model_from_string(
                "<model name='m'><actor name='a' type='Inport' dtype='i32'>"
                "<param name='shape' value='[4'/></actor></model>"
            )

    def test_bad_connection_endpoint(self):
        with pytest.raises(ModelParseError, match="actor.port"):
            model_from_string(
                "<model name='m'>"
                "<actor name='a' type='Inport' dtype='i32'><param name='shape' value='[4]'/></actor>"
                "<connection src='a' dst='b.in1'/></model>"
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ModelParseError, match="cannot"):
            read_model(tmp_path / "nope.xml")
