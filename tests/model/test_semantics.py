"""Tests for the reference model evaluator."""

import numpy as np
import pytest

from repro.dtypes import DataType
from repro.errors import ModelError
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator, evaluate_model


def _adder():
    b = ModelBuilder("m", default_dtype=DataType.I32)
    x = b.inport("x", shape=4)
    c = b.const("c", value=[10, 20, 30, 40])
    s = b.add_actor("Add", "s", x, c)
    b.outport("y", s)
    return b.build()


class TestEvaluator:
    def test_simple_step(self):
        out = evaluate_model(_adder(), {"x": [1, 2, 3, 4]})
        assert list(out["y"]) == [11, 22, 33, 44]

    def test_missing_input_defaults_to_zero(self):
        out = evaluate_model(_adder())
        assert list(out["y"]) == [10, 20, 30, 40]

    def test_wrong_input_shape_rejected(self):
        with pytest.raises(ModelError, match="expects shape"):
            evaluate_model(_adder(), {"x": [1, 2]})

    def test_delay_pipeline_over_steps(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x")
        d = b.add_actor("UnitDelay", "d", x, initial=-1)
        b.outport("y", d)
        evaluator = ModelEvaluator(b.build())
        outs = [evaluator.step({"x": i})["y"].item() for i in range(3)]
        assert outs == [-1, 0, 1]

    def test_reset_clears_state(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x")
        d = b.add_actor("UnitDelay", "d", x, initial=7)
        b.outport("y", d)
        evaluator = ModelEvaluator(b.build())
        evaluator.step({"x": 1})
        assert evaluator.step({"x": 2})["y"].item() == 1
        evaluator.reset()
        assert evaluator.step({"x": 3})["y"].item() == 7

    def test_feedback_through_delay(self):
        # accumulator: y = x + delay(y)
        b = ModelBuilder("acc", default_dtype=DataType.I32)
        x = b.inport("x")
        d = b.add_actor("UnitDelay", "d", dtype=DataType.I32)
        s = b.add_actor("Add", "s", x, d)
        b.connect(s, d, "in1")
        b.outport("y", s)
        evaluator = ModelEvaluator(b.build())
        outs = [evaluator.step({"x": 1})["y"].item() for _ in range(4)]
        assert outs == [1, 2, 3, 4]

    def test_run_multiple_steps(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x")
        b.outport("y", x)
        evaluator = ModelEvaluator(b.build())
        results = evaluator.run([{"x": 1}, {"x": 2}])
        assert [r["y"].item() for r in results] == [1, 2]

    def test_multiple_outports(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x", shape=2)
        n = b.add_actor("Neg", "n", x)
        b.outport("pos", x)
        b.outport("neg", n)
        out = evaluate_model(b.build(), {"x": [5, -3]})
        assert list(out["pos"]) == [5, -3]
        assert list(out["neg"]) == [-5, 3]

    def test_output_dtype_preserved(self):
        out = evaluate_model(_adder(), {"x": [1, 2, 3, 4]})
        assert out["y"].dtype == np.int32
