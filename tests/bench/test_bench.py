"""Tests for the benchmark models, runner and report rendering."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.bench import (
    benchmark_inputs,
    benchmark_suite,
    compare_generators,
    improvement,
    iterations_for,
    make_generator,
    render_figure1,
    render_table2,
    run_generator,
    summarize_improvements,
)
from repro.bench.models import (
    conv_model,
    dct_model,
    fft_model,
    fir_model,
    highpass_model,
    lowpass_model,
)
from repro.compiler import GCC
from repro.dtypes import DataType
from repro.errors import ReproError


class TestModels:
    def test_suite_contents(self):
        suite = benchmark_suite()
        assert set(suite) == {"FFT", "DCT", "Conv", "HighPass", "LowPass", "FIR"}

    def test_paper_scales(self):
        suite = benchmark_suite()
        assert suite["FFT"].actor("fft").input("in1").width == 1024
        fir = suite["FIR"]
        assert fir.actor("weighted").output("out").dtype is DataType.I32
        assert fir.actor("weighted").output("out").width == 1024

    def test_models_scale_down(self):
        for factory in (fft_model, dct_model, highpass_model, lowpass_model, fir_model):
            model = factory(16)
            model.validate()
        conv_model(16, 4).validate()

    def test_inputs_deterministic(self):
        model = fir_model(32)
        a = benchmark_inputs(model)
        b = benchmark_inputs(model)
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_ctrl_input_takes_filter_path(self):
        model = highpass_model(16)
        inputs = benchmark_inputs(model)
        assert float(inputs["ctrl"]) >= 0.5


class TestRunner:
    def test_make_generator(self):
        assert make_generator("hcg", ARM_A72).name == "hcg"
        with pytest.raises(ReproError, match="unknown generator"):
            make_generator("gcc", ARM_A72)

    def test_iterations_match_paper(self):
        assert iterations_for(ARM_A72) == 10_000
        assert iterations_for(INTEL_I7_8700) == 100_000

    def test_run_generator_fields(self):
        result = run_generator(fir_model(32), "hcg", ARM_A72, GCC)
        assert result.model == "FIR"
        assert result.cycles_per_step > 0
        assert result.seconds > 0
        assert result.codegen_seconds >= 0
        assert result.data_bytes > 0
        assert "y" in result.outputs

    def test_compare_checks_consistency(self):
        results = compare_generators(fir_model(32), ARM_A72, GCC)
        assert set(results) == {"simulink_coder", "dfsynth", "hcg"}

    def test_improvement_metric(self):
        assert improvement(2.0, 1.0) == pytest.approx(50.0)
        assert improvement(0.0, 1.0) == 0.0


class TestReports:
    def test_render_table2(self):
        rows = {"FIR": compare_generators(fir_model(32), ARM_A72, GCC)}
        text = render_table2(rows)
        assert "FIR" in text and "vs Simulink" in text and "%" in text

    def test_summaries(self):
        rows = {"FIR": compare_generators(fir_model(64), ARM_A72, GCC)}
        summary = summarize_improvements(rows)
        assert summary["simulink_min"] == summary["simulink_max"]
        assert summary["simulink_min"] > 0

    def test_render_figure1(self):
        series = {"radix2": {8: 100.0, 16: 250.0}, "naive": {8: 90.0}}
        text = render_figure1(series)
        assert "radix2" in text and "naive" in text
        assert text.count("\n") == 2  # header + two lengths


class TestShapeClaims:
    """Scaled-down versions of the paper's headline claims."""

    def test_hcg_wins_on_scaled_suite(self):
        for factory, kwargs in (
            (fft_model, {"n": 256}),
            (dct_model, {"n": 256}),
            (conv_model, {"n": 256, "m": 16}),
            (highpass_model, {"n": 256}),
            (lowpass_model, {"n": 256}),
            (fir_model, {"n": 256}),
        ):
            model = factory(**kwargs)
            results = compare_generators(model, ARM_A72, GCC)
            hcg = results["hcg"].seconds
            assert hcg < results["simulink_coder"].seconds, model.name
            assert hcg < results["dfsynth"].seconds, model.name

    def test_codegen_time_same_order(self):
        """§4.1: all tools generate code in comparable time."""
        results = compare_generators(fir_model(256), ARM_A72, GCC)
        times = sorted(r.codegen_seconds for r in results.values())
        assert times[-1] < 5.0  # seconds, like the paper's 1-2 s


class TestExports:
    def test_figure5_bars(self):
        rows = {"FIR": compare_generators(fir_model(64), ARM_A72, GCC)}
        from repro.bench import render_figure5_bars

        text = render_figure5_bars({"(a) test": rows})
        assert "#" in text and "hcg" in text and "FIR:" in text

    def test_csv_export(self):
        from repro.bench import results_to_csv

        rows = {"FIR": compare_generators(fir_model(64), ARM_A72, GCC)}
        csv = results_to_csv(rows)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("model,generator")
        assert len(lines) == 4  # header + three generators
        assert "FIR,hcg,arm_a72,gcc" in csv
