"""Tests for schedule analysis."""

import pytest

from repro.dtypes import DataType
from repro.errors import ScheduleError
from repro.model.builder import ModelBuilder
from repro.model.graph import Model
from repro.model.actor_defs import create_actor
from repro.schedule.scheduler import compute_schedule


def _chain():
    b = ModelBuilder("m", default_dtype=DataType.I32)
    x = b.inport("x", shape=4)
    a = b.add_actor("Abs", "a", x)
    n = b.add_actor("Neg", "n", a)
    b.outport("y", n)
    return b.build()


class TestSchedule:
    def test_topological_order(self):
        schedule = compute_schedule(_chain())
        assert schedule.position("x") < schedule.position("a")
        assert schedule.position("a") < schedule.position("n")
        assert schedule.position("n") < schedule.position("y")

    def test_every_actor_scheduled_once(self):
        model = _chain()
        schedule = compute_schedule(model)
        assert sorted(schedule.order) == sorted(a.name for a in model.actors)

    def test_deterministic(self):
        model = _chain()
        assert compute_schedule(model).order == compute_schedule(model).order

    def test_delay_acts_as_source(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        x = b.inport("x")
        d = b.add_actor("UnitDelay", "d", dtype=DataType.I32)
        s = b.add_actor("Add", "s", x, d)
        b.connect(s, d, "in1")
        b.outport("y", s)
        schedule = compute_schedule(b.build())
        # the delay's same-step position is unconstrained by its input
        assert "d" in schedule.order
        assert schedule.state_updates == ("d",)

    def test_cycle_raises(self):
        model = Model("cyc")
        model.add_actor(create_actor("a", "Neg", DataType.I32, {"shape": (2,)}))
        model.add_actor(create_actor("b", "Neg", DataType.I32, {"shape": (2,)}))
        model.connect("a", "out", "b", "in1")
        model.connect("b", "out", "a", "in1")
        with pytest.raises(ScheduleError, match="cycle"):
            compute_schedule(model)

    def test_insertion_order_tiebreak(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        first = b.inport("first", shape=2)
        second = b.inport("second", shape=2)
        b.outport("o1", first)
        b.outport("o2", second)
        schedule = compute_schedule(b.build())
        assert schedule.position("first") < schedule.position("second")
