"""Tests for branch-region analysis (DFSynth substrate)."""

from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.schedule.regions import find_branch_regions, region_membership


def _switch_model(extra_consumer: bool = False):
    b = ModelBuilder("m", default_dtype=DataType.F32)
    x = b.inport("x", shape=8)
    ctrl = b.inport("ctrl")
    then_chain = b.add_actor("Sqrt", "sq", x)
    then_top = b.add_actor("Neg", "ng", then_chain)
    else_side = b.add_actor("Abs", "ab", x)
    sw = b.add_actor("Switch", "sw", then_top, dtype=DataType.F32, shape=8)
    b.connect(ctrl, sw, "ctrl")
    b.connect(else_side, sw, "in2")
    b.outport("y", sw)
    if extra_consumer:
        b.outport("debug", then_chain)
    return b.build()


class TestRegions:
    def test_exclusive_chains_found(self):
        regions = find_branch_regions(_switch_model())
        by_port = {(r.switch, r.port): set(r.members) for r in regions}
        assert by_port[("sw", "in1")] == {"sq", "ng"}
        assert by_port[("sw", "in2")] == {"ab"}

    def test_shared_actor_excluded(self):
        # `sq` also feeds an outport -> it is not exclusive any more,
        # and neither is anything upstream of it.
        regions = find_branch_regions(_switch_model(extra_consumer=True))
        by_port = {(r.switch, r.port): set(r.members) for r in regions}
        assert ("sw", "in1") in by_port
        assert by_port[("sw", "in1")] == {"ng"}

    def test_inports_never_move(self):
        regions = find_branch_regions(_switch_model())
        members = {m for r in regions for m in r.members}
        assert "x" not in members and "ctrl" not in members

    def test_membership_map(self):
        regions = find_branch_regions(_switch_model())
        membership = region_membership(regions)
        assert membership["sq"].port == "in1"
        assert membership["ab"].port == "in2"

    def test_no_switch_no_regions(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=4)
        b.outport("y", x)
        assert find_branch_regions(b.build()) == []

    def test_actor_feeding_both_sides_stays_out(self):
        b = ModelBuilder("m", default_dtype=DataType.F32)
        x = b.inport("x", shape=4)
        ctrl = b.inport("ctrl")
        shared = b.add_actor("Abs", "shared", x)
        neg = b.add_actor("Neg", "neg", shared)
        sw = b.add_actor("Switch", "sw", shared, dtype=DataType.F32, shape=4)
        b.connect(ctrl, sw, "ctrl")
        b.connect(neg, sw, "in2")
        b.outport("y", sw)
        regions = find_branch_regions(b.build())
        members = {m for r in regions for m in r.members}
        assert "shared" not in members
        assert "neg" in members
