"""Tests for DCT, IDCT and convolution kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ARM_A72
from repro.dtypes import DataType
from repro.kernels.base import OpCounts
from repro.kernels.conv import ConvDirect, ConvFft, make_conv_kernels
from repro.kernels.dct import (
    DctLee,
    DctNaive,
    DctViaFft,
    IdctNaive,
    IdctViaDct,
    make_dct_kernels,
    make_idct_kernels,
    _dct2_matrix,
)


class TestDctCorrectness:
    @pytest.mark.parametrize("kernel", [DctNaive(), DctViaFft(), DctLee()],
                             ids=lambda k: k.kernel_id)
    @pytest.mark.parametrize("n", [1, 2, 8, 32, 64])
    def test_matches_basis(self, kernel, n, rng):
        if not kernel.can_handle(DataType.F64, {"n": n}):
            pytest.skip("out of domain")
        x = rng.normal(size=n)
        out = kernel.run([x], {"n": n}, DataType.F64).outputs[0]
        assert np.allclose(out, _dct2_matrix(n) @ x, atol=1e-8)

    def test_via_fft_handles_non_pow2(self, rng):
        x = rng.normal(size=12)
        out = DctViaFft().run([x], {"n": 12}, DataType.F64).outputs[0]
        assert np.allclose(out, _dct2_matrix(12) @ x, atol=1e-8)

    def test_lee_pow2_only(self):
        assert DctLee().can_handle(DataType.F32, {"n": 64})
        assert not DctLee().can_handle(DataType.F32, {"n": 48})

    @given(st.integers(2, 7))
    @settings(max_examples=6, deadline=None)
    def test_lee_recursion_every_pow2(self, k):
        n = 2 ** k
        rng = np.random.default_rng(k)
        x = rng.normal(size=n)
        out = DctLee().run([x], {"n": n}, DataType.F64).outputs[0]
        assert np.allclose(out, _dct2_matrix(n) @ x, atol=1e-7)

    def test_idct_inverts_dct(self, rng):
        n = 16
        x = rng.normal(size=n)
        coeffs = DctNaive().run([x], {"n": n}, DataType.F64).outputs[0]
        for kernel in (IdctNaive(), IdctViaDct()):
            back = kernel.run([coeffs], {"n": n}, DataType.F64).outputs[0]
            assert np.allclose(back, x, atol=1e-8), kernel.kernel_id

    def test_library_sets(self):
        dct = {k.kernel_id for k in make_dct_kernels()}
        assert {"dct.naive", "dct.fft", "dct.lee", "dct.lee_simd"} <= dct
        idct = {k.kernel_id for k in make_idct_kernels()}
        assert "idct.naive" in idct

    def test_lee_cheaper_than_naive_at_scale(self):
        lee, naive = OpCounts(), OpCounts()
        DctLee().execute([np.zeros(256)], {"n": 256}, lee)
        DctNaive().execute([np.zeros(256)], {"n": 256}, naive)
        assert lee.cycles(ARM_A72.cost) < naive.cycles(ARM_A72.cost) / 5

    def test_lee_cheaper_than_fft_generic(self):
        lee, generic = OpCounts(), OpCounts()
        DctLee().execute([np.zeros(1024)], {"n": 1024}, lee)
        DctViaFft().execute([np.zeros(1024)], {"n": 1024}, generic)
        assert lee.cycles(ARM_A72.cost) < generic.cycles(ARM_A72.cost)


class TestConvCorrectness:
    @pytest.mark.parametrize("n,m", [(1, 1), (5, 3), (32, 8), (100, 17)])
    def test_direct_matches_numpy(self, n, m, rng):
        a = rng.normal(size=n)
        b = rng.normal(size=m)
        out = ConvDirect().run([a, b], {"n": n, "m": m}, DataType.F64).outputs[0]
        assert np.allclose(out, np.convolve(a, b))

    @pytest.mark.parametrize("n,m", [(5, 3), (32, 8), (100, 17)])
    def test_fft_matches_numpy(self, n, m, rng):
        a = rng.normal(size=n)
        b = rng.normal(size=m)
        out = ConvFft().run([a, b], {"n": n, "m": m}, DataType.F64).outputs[0]
        assert np.allclose(out, np.convolve(a, b), atol=1e-8)

    def test_integer_direct(self, rng):
        a = rng.integers(-50, 50, size=10).astype(np.int32)
        b = rng.integers(-50, 50, size=3).astype(np.int32)
        out = ConvDirect().run([a, b], {"n": 10, "m": 3}, DataType.I32).outputs[0]
        assert np.array_equal(out, np.convolve(a.astype(np.int64), b.astype(np.int64)).astype(np.int32))

    def test_fft_rejects_integers(self):
        assert not ConvFft().can_handle(DataType.I32, {"n": 8, "m": 3})
        assert ConvDirect().can_handle(DataType.I32, {"n": 8, "m": 3})

    def test_crossover_direct_vs_fft(self):
        """Algorithm 1's raison d'etre: direct wins small taps, FFT wins
        when both operands are long."""
        def cycles(kernel, n, m):
            counts = OpCounts()
            kernel.execute([np.zeros(n), np.zeros(m)], {"n": n, "m": m}, counts)
            return counts.cycles(ARM_A72.cost)

        assert cycles(ConvDirect(), 64, 4) < cycles(ConvFft(), 64, 4)
        assert cycles(ConvFft(), 1024, 1024) < cycles(ConvDirect(), 1024, 1024)

    def test_library_set(self):
        ids = {k.kernel_id for k in make_conv_kernels()}
        assert {"conv.direct", "conv.fft", "conv.direct_simd", "conv.fft_simd"} == ids
        generals = [k for k in make_conv_kernels() if k.general]
        assert [k.kernel_id for k in generals] == ["conv.direct"]
