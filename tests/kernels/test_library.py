"""Tests for the code library (Algorithm 1's loadCodeLibrary)."""

import pytest

from repro.errors import KernelError
from repro.kernels import CodeLibrary, build_default_library, default_library
from repro.kernels.base import Kernel, kernel_cycles, OpCounts
from repro.arch import ARM_A72


class TestLibrary:
    def test_every_table1_actor_covered(self, library):
        expected = {"fft", "ifft", "fft2d", "ifft2d", "dct", "idct", "dct2d",
                    "idct2d", "conv", "conv2d", "matmul", "matinv", "matdet"}
        assert set(library.actor_keys()) == expected

    def test_one_to_many(self, library):
        assert len(library.implementations("fft")) >= 5

    def test_exactly_one_general_per_key(self, library):
        for key in library.actor_keys():
            generals = [k for k in library.implementations(key) if k.general]
            assert len(generals) == 1, key

    def test_by_id(self, library):
        assert library.by_id("fft.radix4").actor_key == "fft"
        with pytest.raises(KernelError, match="unknown kernel id"):
            library.by_id("fft.quantum")

    def test_unknown_key(self, library):
        with pytest.raises(KernelError, match="no implementations"):
            library.implementations("blockchain")

    def test_duplicate_registration_rejected(self, library):
        lib = CodeLibrary()
        kernel = library.by_id("fft.radix2")
        lib.register(kernel)
        with pytest.raises(KernelError, match="twice"):
            lib.register(kernel)

    def test_default_library_is_cached(self):
        assert default_library() is default_library()

    def test_build_makes_fresh(self):
        assert build_default_library() is not default_library()

    def test_unique_ids(self, library):
        seen = set()
        for key in library.actor_keys():
            for kernel in library.implementations(key):
                assert kernel.kernel_id not in seen
                seen.add(kernel.kernel_id)


class TestKernelCycles:
    def test_scalar_path_includes_call_overhead(self):
        counts = OpCounts(add=100)
        cycles = kernel_cycles(counts, ARM_A72.cost, simd=False, lanes=4,
                               vectorizable_fraction=0.0)
        assert cycles == pytest.approx(100 + ARM_A72.cost.call_overhead)

    def test_simd_path_cheaper(self):
        counts = OpCounts(add=1000)
        scalar = kernel_cycles(counts, ARM_A72.cost, False, 4, 0.0)
        simd = kernel_cycles(counts, ARM_A72.cost, True, 4, 0.9)
        assert simd < scalar

    def test_more_lanes_cheaper(self):
        counts = OpCounts(mul=1000)
        four = kernel_cycles(counts, ARM_A72.cost, True, 4, 0.9)
        eight = kernel_cycles(counts, ARM_A72.cost, True, 8, 0.9)
        assert eight < four

    def test_zero_vectorizable_is_scalar(self):
        counts = OpCounts(add=100)
        assert kernel_cycles(counts, ARM_A72.cost, True, 4, 0.0) == pytest.approx(
            kernel_cycles(counts, ARM_A72.cost, False, 4, 0.0)
        )


class TestOpCounts:
    def test_scale(self):
        counts = OpCounts(add=2, mul=4, load=6)
        doubled = counts.scale(2.0)
        assert doubled.add == 4 and doubled.mul == 8 and doubled.load == 12

    def test_merge(self):
        a = OpCounts(add=1)
        a.merge(OpCounts(add=2, div=3))
        assert a.add == 3 and a.div == 3

    def test_arithmetic_total(self):
        assert OpCounts(add=1, mul=2, div=3, sqrt=4).arithmetic == 10
