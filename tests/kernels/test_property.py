"""Property-based tests over the kernel library."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch import ARM_A72
from repro.dtypes import DataType
from repro.kernels import default_library
from repro.kernels.base import OpCounts


class TestMatMulProperty:
    @given(st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_naive_matches_numpy_any_size(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        kernel = default_library().by_id("matmul.naive")
        out = kernel.run([a, b], {"n": n}, DataType.F64).outputs[0]
        assert np.allclose(out, a @ b, atol=1e-9)

    @given(st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_counts_grow_cubically(self, n):
        kernel = default_library().by_id("matmul.naive")
        small, big = OpCounts(), OpCounts()
        kernel.execute([np.zeros((n, n))] * 2, {"n": n}, small)
        kernel.execute([np.zeros((2 * n, 2 * n))] * 2, {"n": 2 * n}, big)
        assert big.mul == 8 * small.mul


class TestConvProperty:
    @given(st.integers(1, 64), st.integers(1, 16), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_direct_matches_numpy(self, n, m, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=n)
        b = rng.normal(size=m)
        kernel = default_library().by_id("conv.direct")
        out = kernel.run([a, b], {"n": n, "m": m}, DataType.F64).outputs[0]
        assert out.shape == (n + m - 1,)
        assert np.allclose(out, np.convolve(a, b), atol=1e-9)

    @given(st.integers(2, 40), st.integers(2, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_fft_conv_agrees_with_direct(self, n, m, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=n)
        b = rng.normal(size=m)
        library = default_library()
        direct = library.by_id("conv.direct").run([a, b], {"n": n, "m": m},
                                                  DataType.F64).outputs[0]
        via_fft = library.by_id("conv.fft").run([a, b], {"n": n, "m": m},
                                                DataType.F64).outputs[0]
        assert np.allclose(direct, via_fft, atol=1e-7)


class TestMatInvProperty:
    @given(st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_gauss_inverts(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n)) + np.eye(n) * (n + 1)
        kernel = default_library().by_id("matinv.gauss")
        out = kernel.run([a], {"n": n}, DataType.F64).outputs[0]
        assert np.allclose(out @ a, np.eye(n), atol=1e-7)


class TestDctProperty:
    @given(st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_lee_agrees_with_naive(self, k, seed):
        n = 2 ** k
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        library = default_library()
        naive = library.by_id("dct.naive").run([x], {"n": n}, DataType.F64).outputs[0]
        lee = library.by_id("dct.lee").run([x], {"n": n}, DataType.F64).outputs[0]
        assert np.allclose(naive, lee, atol=1e-7)


class TestCountInvariants:
    @given(st.sampled_from(["fft.radix2", "fft.mixed", "fft.bluestein",
                            "fft.splitradix", "dct.lee", "conv.direct"]))
    @settings(max_examples=12, deadline=None)
    def test_counts_deterministic(self, kernel_id):
        """Two runs on same-sized input count identically (the property
        Algorithm 1's caching relies on)."""
        library = default_library()
        kernel = library.by_id(kernel_id)
        params = {"n": 16, "m": 4}
        inputs = [np.ones(16), np.ones(4)][: 2 if "conv" in kernel_id else 1]
        a, b = OpCounts(), OpCounts()
        kernel.execute(inputs, params, a)
        kernel.execute([x * 2 for x in inputs], params, b)
        for field in ("add", "mul", "div", "load", "store", "misc"):
            assert getattr(a, field) == getattr(b, field), field

    def test_counts_never_negative(self):
        library = default_library()
        for key in library.actor_keys():
            for kernel in library.implementations(key):
                pass  # structure only; execution covered elsewhere
