"""Validate the emitted kernel C bodies against the Python kernels.

Each generated C function is compiled with the host compiler, run on
random input, and compared with the corresponding Python kernel (which
is itself tested against numpy).  Skips when no compiler is present.
"""

import shutil
import subprocess

import numpy as np
import pytest

from repro.dtypes import DataType
from repro.kernels import default_library
from repro.kernels.c_sources import has_c_source, kernel_c_source, specialized_name

GCC = shutil.which("gcc")

pytestmark = pytest.mark.skipif(GCC is None, reason="no host C compiler")


def _run_kernel_c(kernel_id, params, dtype, inputs, out_length, tmp_path):
    source = kernel_c_source(kernel_id, params, dtype)
    assert source is not None
    name = specialized_name(kernel_id, params)
    ctype = {"f32": "float", "f64": "double", "i32": "int32_t"}[dtype.value]
    fmt = "%.9g" if dtype.is_float else "%lld"
    cast = "(double)" if dtype.is_float else "(long long)"

    main_lines = ["#include <stdio.h>", "#include <stdint.h>", "#include <math.h>",
                  "#include <string.h>", "", source, "", "int main(void) {"]
    arg_names = []
    for position, data in enumerate(inputs):
        flat = np.asarray(data).ravel()
        rendered = ", ".join(
            f"{float(v)!r}" if dtype.is_float else str(int(v)) for v in flat
        )
        main_lines.append(
            f"    static const {ctype} in{position}[{flat.size}] = {{{rendered}}};"
        )
        arg_names.append(f"in{position}")
    main_lines.append(f"    static {ctype} out0[{out_length}];")
    arg_names.append("out0")
    main_lines.append(f"    {name}({', '.join(arg_names)});")
    main_lines.append(f"    for (int i = 0; i < {out_length}; ++i) "
                      f'printf("{fmt}\\n", {cast}out0[i]);')
    main_lines.append("    return 0;\n}")

    c_file = tmp_path / "kernel.c"
    c_file.write_text("\n".join(main_lines))
    binary = tmp_path / "kernel"
    completed = subprocess.run(
        [GCC, "-O1", "-std=c99", str(c_file), "-o", str(binary), "-lm"],
        capture_output=True, text=True,
    )
    assert completed.returncode == 0, completed.stderr[-1500:]
    run = subprocess.run([str(binary)], capture_output=True, text=True, timeout=30)
    assert run.returncode == 0
    return np.array([float(v) for v in run.stdout.split()])


class TestSpecializedNames:
    def test_name_includes_sizes(self):
        assert specialized_name("fft.radix2", {"n": 64}) == "fft_radix2_n64"
        assert specialized_name("conv2d.direct",
                                {"rows": 4, "cols": 8, "krows": 2, "kcols": 2}
                                ) == "conv2d_direct_rows4_cols8_krows2_kcols2"

    def test_has_c_source(self):
        assert has_c_source("conv.direct", {"n": 8, "m": 3})
        assert has_c_source("fft.radix2", {"n": 16})
        assert not has_c_source("fft.radix2", {"n": 12})   # not 2^k
        assert not has_c_source("fft.bluestein", {"n": 12})
        assert not has_c_source("matdet.cofactor", {"n": 4})  # kept in library


class TestAgainstPythonKernels:
    def _reference(self, kernel_id, inputs, params, dtype):
        library = default_library()
        return library.by_id(kernel_id).run(inputs, params, dtype).outputs[0]

    def test_conv_direct(self, tmp_path, rng):
        params = {"n": 20, "m": 5}
        a = rng.normal(size=20)
        b = rng.normal(size=5)
        got = _run_kernel_c("conv.direct", params, DataType.F64, [a, b], 24, tmp_path)
        want = self._reference("conv.direct", [a, b], params, DataType.F64)
        assert np.allclose(got, want, atol=1e-9)

    def test_conv_direct_integer(self, tmp_path, rng):
        params = {"n": 10, "m": 3}
        a = rng.integers(-40, 40, 10).astype(np.int32)
        b = rng.integers(-40, 40, 3).astype(np.int32)
        got = _run_kernel_c("conv.direct", params, DataType.I32, [a, b], 12, tmp_path)
        want = self._reference("conv.direct", [a, b], params, DataType.I32)
        assert np.array_equal(got.astype(np.int64), want.astype(np.int64))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matmul_unrolled(self, n, tmp_path, rng):
        a = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        got = _run_kernel_c("matmul.unrolled", {"n": n}, DataType.F64,
                            [a, b], n * n, tmp_path)
        assert np.allclose(got.reshape(n, n), a @ b, atol=1e-9)

    def test_matmul_naive_large(self, tmp_path, rng):
        n = 6
        a = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        got = _run_kernel_c("matmul.naive", {"n": n}, DataType.F64,
                            [a, b], n * n, tmp_path)
        assert np.allclose(got.reshape(n, n), a @ b, atol=1e-9)

    @pytest.mark.parametrize("n", [2, 3])
    def test_matinv_cofactor(self, n, tmp_path, rng):
        a = rng.normal(size=(n, n)) + np.eye(n) * n
        got = _run_kernel_c("matinv.cofactor", {"n": n}, DataType.F64,
                            [a], n * n, tmp_path)
        assert np.allclose(got.reshape(n, n) @ a, np.eye(n), atol=1e-8)

    @pytest.mark.parametrize("n", [3, 5])
    def test_matinv_gauss(self, n, tmp_path, rng):
        a = rng.normal(size=(n, n)) + np.eye(n) * n
        got = _run_kernel_c("matinv.gauss", {"n": n}, DataType.F64,
                            [a], n * n, tmp_path)
        assert np.allclose(got.reshape(n, n) @ a, np.eye(n), atol=1e-8)

    @pytest.mark.parametrize("n", [2, 3])
    def test_matdet_cofactor(self, n, tmp_path, rng):
        a = rng.normal(size=(n, n))
        got = _run_kernel_c("matdet.cofactor", {"n": n}, DataType.F64, [a], 1, tmp_path)
        assert np.isclose(got[0], np.linalg.det(a))

    def test_dct_naive(self, tmp_path, rng):
        n = 16
        x = rng.normal(size=n)
        got = _run_kernel_c("dct.naive", {"n": n}, DataType.F64, [x], n, tmp_path)
        want = self._reference("dct.naive", [x], {"n": n}, DataType.F64)
        assert np.allclose(got, want, atol=1e-7)

    def test_fft_naive(self, tmp_path, rng):
        n = 12
        x = rng.normal(size=n)
        got = _run_kernel_c("fft.naive", {"n": n}, DataType.F64, [x], 2 * n, tmp_path)
        ref = np.fft.fft(x)
        assert np.allclose(got[:n] + 1j * got[n:], ref, atol=1e-7)

    @pytest.mark.parametrize("n", [8, 64, 256])
    def test_fft_radix2(self, n, tmp_path, rng):
        x = rng.normal(size=n)
        got = _run_kernel_c("fft.radix2", {"n": n}, DataType.F64, [x], 2 * n, tmp_path)
        ref = np.fft.fft(x)
        assert np.allclose(got[:n] + 1j * got[n:], ref, atol=1e-6)

    def test_conv2d_direct(self, tmp_path, rng):
        params = {"rows": 5, "cols": 6, "krows": 2, "kcols": 3}
        a = rng.normal(size=(5, 6))
        k = rng.normal(size=(2, 3))
        got = _run_kernel_c("conv2d.direct", params, DataType.F64,
                            [a, k], 6 * 8, tmp_path)
        want = self._reference("conv2d.direct", [a, k], params, DataType.F64)
        assert np.allclose(got.reshape(6, 8), want, atol=1e-9)

    def test_simd_fallback_annotated(self):
        source = kernel_c_source("conv.direct_simd", {"n": 8, "m": 3}, DataType.F32)
        assert source is not None
        assert "scalar reference body" in source
