"""Tests for matrix kernels and 2-D transform kernels."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.dtypes import DataType
from repro.kernels.base import OpCounts
from repro.kernels.matrix import (
    MatDetCofactor,
    MatDetLu,
    MatInvCofactor,
    MatInvGauss,
    MatMulNaive,
    MatMulUnrolled,
)
from repro.kernels.transforms2d import (
    Conv2dDirect,
    Dct2dRowCol,
    Fft2dRowCol,
    Idct2dRowCol,
)


class TestMatMul:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_results(self, n, rng):
        a = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        for kernel in (MatMulNaive(), MatMulUnrolled()):
            out = kernel.run([a, b], {"n": n}, DataType.F64).outputs[0]
            assert np.allclose(out, a @ b), kernel.kernel_id

    def test_integer_matmul_wraps(self):
        a = np.full((2, 2), 2**20, dtype=np.int32)
        out = MatMulNaive().run([a, a], {"n": 2}, DataType.I32).outputs[0]
        ref = (a.astype(np.int64) @ a.astype(np.int64)).astype(np.int32)
        assert np.array_equal(out, ref)

    def test_unrolled_limited_to_4(self):
        assert MatMulUnrolled().can_handle(DataType.F32, {"n": 4})
        assert not MatMulUnrolled().can_handle(DataType.F32, {"n": 5})
        assert MatMulNaive().can_handle(DataType.F32, {"n": 10})

    def test_unrolled_cheaper(self):
        a = np.zeros((4, 4))
        naive, unrolled = OpCounts(), OpCounts()
        MatMulNaive().execute([a, a], {"n": 4}, naive)
        MatMulUnrolled().execute([a, a], {"n": 4}, unrolled)
        assert unrolled.cycles(ARM_A72.cost) < naive.cycles(ARM_A72.cost)


class TestMatInvDet:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_inversion(self, n, rng):
        a = rng.normal(size=(n, n)) + np.eye(n) * n
        for kernel in (MatInvGauss(), MatInvCofactor()):
            out = kernel.run([a], {"n": n}, DataType.F64).outputs[0]
            assert np.allclose(out @ a, np.eye(n), atol=1e-8), kernel.kernel_id

    def test_gauss_handles_large(self, rng):
        a = rng.normal(size=(8, 8)) + np.eye(8) * 8
        out = MatInvGauss().run([a], {"n": 8}, DataType.F64).outputs[0]
        assert np.allclose(out @ a, np.eye(8), atol=1e-7)

    def test_cofactor_cheaper_small(self):
        a = np.eye(3)
        gauss, cofactor = OpCounts(), OpCounts()
        MatInvGauss().execute([a], {"n": 3}, gauss)
        MatInvCofactor().execute([a], {"n": 3}, cofactor)
        assert cofactor.cycles(ARM_A72.cost) < gauss.cycles(ARM_A72.cost)

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_determinant(self, n, rng):
        a = rng.normal(size=(n, n))
        for kernel in (MatDetLu(), MatDetCofactor()):
            out = kernel.run([a], {"n": n}, DataType.F64).outputs[0]
            assert np.isclose(float(out), np.linalg.det(a)), kernel.kernel_id


class TestTransforms2d:
    def test_fft2d(self, rng):
        x = rng.normal(size=(8, 16))
        kernel = Fft2dRowCol(inverse=False, algorithm="radix2")
        out = kernel.run([x], {"rows": 8, "cols": 16}, DataType.F64).outputs[0]
        ref = np.fft.fft2(x)
        assert np.allclose(out[0] + 1j * out[1], ref)

    def test_ifft2d_roundtrip(self, rng):
        x = rng.normal(size=(4, 8))
        fwd = Fft2dRowCol(inverse=False, algorithm="mixed")
        spectrum = fwd.run([x], {"rows": 4, "cols": 8}, DataType.F64).outputs[0]
        inv = Fft2dRowCol(inverse=True, algorithm="mixed")
        back = inv.run([spectrum], {"rows": 4, "cols": 8}, DataType.F64).outputs[0]
        assert np.allclose(back[0], x, atol=1e-8)

    def test_radix2_2d_domain(self):
        kernel = Fft2dRowCol(inverse=False, algorithm="radix2")
        assert kernel.can_handle(DataType.F32, {"rows": 8, "cols": 16})
        assert not kernel.can_handle(DataType.F32, {"rows": 12, "cols": 16})

    def test_dct2d_idct2d_roundtrip(self, rng):
        x = rng.normal(size=(8, 8))
        coeffs = Dct2dRowCol("lee").run([x], {"rows": 8, "cols": 8}, DataType.F64).outputs[0]
        back = Idct2dRowCol().run([coeffs], {"rows": 8, "cols": 8}, DataType.F64).outputs[0]
        assert np.allclose(back, x, atol=1e-8)

    def test_conv2d(self, rng):
        a = rng.normal(size=(5, 7))
        k = rng.normal(size=(3, 2))
        out = Conv2dDirect().run([a, k], {"rows": 5, "cols": 7, "krows": 3, "kcols": 2},
                                 DataType.F64).outputs[0]
        # compare against scipy-free reference via explicit loops
        ref = np.zeros((7, 8))
        for i in range(3):
            for j in range(2):
                ref[i:i + 5, j:j + 7] += k[i, j] * a
        assert np.allclose(out, ref)

    def test_counts_scale_with_rows(self):
        small, big = OpCounts(), OpCounts()
        kernel = Fft2dRowCol(inverse=False, algorithm="radix2")
        kernel.execute([np.zeros((4, 64))], {"rows": 4, "cols": 64}, small)
        kernel.execute([np.zeros((8, 64))], {"rows": 8, "cols": 64}, big)
        assert big.mul > 1.5 * small.mul
