"""Tests for the FFT kernel implementations (Fig. 1's code library)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ARM_A72
from repro.dtypes import DataType
from repro.errors import KernelDomainError
from repro.kernels.base import OpCounts
from repro.kernels.fft import (
    FftBluestein,
    FftMixed,
    FftNaive,
    FftRadix2,
    FftRadix4,
    make_fft_kernels,
)


ALL_FORWARD = {k.kernel_id: k for k in make_fft_kernels(inverse=False)}
ALL_INVERSE = {k.kernel_id: k for k in make_fft_kernels(inverse=True)}


class TestDomains:
    def test_radix2_powers_of_two_only(self):
        k = FftRadix2(inverse=False)
        assert k.can_handle(DataType.F32, {"n": 64})
        assert not k.can_handle(DataType.F32, {"n": 48})
        assert not k.can_handle(DataType.I32, {"n": 64})

    def test_radix4_powers_of_four_only(self):
        k = FftRadix4(inverse=False)
        assert k.can_handle(DataType.F64, {"n": 256})
        assert not k.can_handle(DataType.F64, {"n": 128})

    def test_general_implementations_handle_anything(self):
        for k in (FftNaive(False), FftMixed(False), FftBluestein(False)):
            for n in (1, 2, 3, 7, 12, 60, 100, 1000):
                assert k.can_handle(DataType.F64, {"n": n}), (k.kernel_id, n)

    def test_run_rejects_out_of_domain(self):
        with pytest.raises(KernelDomainError):
            FftRadix2(inverse=False).run([np.zeros(12)], {"n": 12}, DataType.F64)

    def test_exactly_one_general(self):
        generals = [k for k in ALL_FORWARD.values() if k.general]
        assert len(generals) == 1 and generals[0].kernel_id == "fft.mixed"


class TestCorrectness:
    @pytest.mark.parametrize("kernel_id", sorted(ALL_FORWARD))
    @pytest.mark.parametrize("n", [1, 4, 16, 64, 12, 45, 97, 128])
    def test_forward_matches_numpy(self, kernel_id, n, rng):
        kernel = ALL_FORWARD[kernel_id]
        if not kernel.can_handle(DataType.F64, {"n": n}):
            pytest.skip("out of domain")
        x = rng.normal(size=n)
        run = kernel.run([x], {"n": n}, DataType.F64)
        got = run.outputs[0][0] + 1j * run.outputs[0][1]
        assert np.allclose(got, np.fft.fft(x), atol=1e-8), kernel_id

    @pytest.mark.parametrize("kernel_id", sorted(ALL_INVERSE))
    def test_inverse_matches_numpy(self, kernel_id, rng):
        kernel = ALL_INVERSE[kernel_id]
        n = 16
        spectrum = rng.normal(size=(2, n))
        run = kernel.run([spectrum], {"n": n}, DataType.F64)
        got = run.outputs[0][0] + 1j * run.outputs[0][1]
        ref = np.fft.ifft(spectrum[0] + 1j * spectrum[1])
        assert np.allclose(got, ref, atol=1e-8), kernel_id

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_mixed_handles_every_length(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n)
        run = FftMixed(inverse=False).run([x], {"n": n}, DataType.F64)
        got = run.outputs[0][0] + 1j * run.outputs[0][1]
        assert np.allclose(got, np.fft.fft(x), atol=1e-7)

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_bluestein_handles_every_length(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n)
        run = FftBluestein(inverse=False).run([x], {"n": n}, DataType.F64)
        got = run.outputs[0][0] + 1j * run.outputs[0][1]
        assert np.allclose(got, np.fft.fft(x), atol=1e-7)


class TestOperationCounts:
    def _cycles(self, kernel, n):
        counts = OpCounts()
        kernel.execute([np.zeros(n)], {"n": n}, counts)
        return counts.cycles(ARM_A72.cost)

    def test_naive_is_quadratic(self):
        small = self._cycles(FftNaive(False), 64)
        big = self._cycles(FftNaive(False), 128)
        assert 3.5 < big / small < 4.5

    def test_radix2_is_n_log_n(self):
        small = self._cycles(FftRadix2(False), 64)
        big = self._cycles(FftRadix2(False), 128)
        assert 2.0 < big / small < 2.7

    def test_radix4_beats_radix2_at_powers_of_four(self):
        assert self._cycles(FftRadix4(False), 1024) < self._cycles(FftRadix2(False), 1024)

    def test_figure1_no_implementation_always_best(self):
        """The paper's Fig. 1 premise: different winners at different n."""
        def best_at(n):
            candidates = {
                "naive": FftNaive(False),
                "mixed": FftMixed(False),
                "bluestein": FftBluestein(False),
            }
            return min(candidates, key=lambda name: self._cycles(candidates[name], n))

        winners = {best_at(n) for n in (2, 3, 480, 1000)}
        assert len(winners) > 1, "one implementation dominated everywhere"

    def test_mixed_overhead_hurts_small_sizes(self):
        # at tiny n the naive DFT beats the mixed machinery
        assert self._cycles(FftNaive(False), 3) < self._cycles(FftMixed(False), 3)

    def test_mixed_wins_large_composite(self):
        n = 960  # highly composite
        assert self._cycles(FftMixed(False), n) < self._cycles(FftNaive(False), n)
        assert self._cycles(FftMixed(False), n) < self._cycles(FftBluestein(False), n)

    def test_simd_variant_counts_match_base(self):
        base = OpCounts()
        FftRadix2(False).execute([np.zeros(64)], {"n": 64}, base)
        simd = OpCounts()
        ALL_FORWARD["fft.radix2_simd"].execute([np.zeros(64)], {"n": 64}, simd)
        assert base.mul == simd.mul and base.add == simd.add

    def test_simd_variant_cheaper_under_lanes(self):
        x = np.zeros(256)
        scalar = FftRadix2(False).measure_cycles([x], {"n": 256}, DataType.F32, ARM_A72.cost, 4)
        simd = ALL_FORWARD["fft.radix2_simd"].measure_cycles(
            [x], {"n": 256}, DataType.F32, ARM_A72.cost, 4
        )
        assert simd < scalar
