"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.model.xml_io import write_model


@pytest.fixture
def model_file(tmp_path):
    b = ModelBuilder("cli_model", default_dtype=DataType.I32)
    x = b.inport("x", shape=16)
    y = b.inport("y", shape=16)
    m = b.add_actor("Mul", "m", x, y)
    a = b.add_actor("Add", "a", m, x)
    b.outport("o", a)
    path = tmp_path / "model.xml"
    write_model(b.build(), path)
    return str(path)


class TestGenerate:
    def test_c_to_stdout(self, model_file, capsys):
        assert main(["generate", model_file]) == 0
        out = capsys.readouterr().out
        assert "vmlaq_s32" in out and "#include <arm_neon.h>" in out

    def test_ir_mode(self, model_file, capsys):
        assert main(["generate", model_file, "--ir"]) == 0
        assert "program cli_model_step" in capsys.readouterr().out

    def test_output_file(self, model_file, tmp_path, capsys):
        out_path = tmp_path / "out.c"
        assert main(["generate", model_file, "-o", str(out_path)]) == 0
        assert "vmlaq_s32" in out_path.read_text()

    def test_benchmark_model_by_name(self, capsys):
        assert main(["generate", "FIR", "--generator", "dfsynth"]) == 0
        out = capsys.readouterr().out
        assert "FIR_step" in out

    def test_other_arch(self, model_file, capsys):
        assert main(["generate", model_file, "--arch", "intel_i7_8700"]) == 0
        out = capsys.readouterr().out
        assert "immintrin" in out


class TestRun:
    def test_run_prints_outputs_and_cycles(self, model_file, capsys):
        assert main(["run", model_file, "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "o:" in out and "modelled cycles/step" in out


class TestBench:
    def test_single_model(self, capsys):
        assert main(["bench", "--model", "FIR"]) == 0
        out = capsys.readouterr().out
        assert "FIR" in out and "vs Simulink" in out

    def test_unknown_model_is_an_error(self, capsys):
        assert main(["bench", "--model", "Nope"]) == 1
        assert "unknown benchmark model" in capsys.readouterr().err


class TestInspect:
    def test_dispatch_report(self, model_file, capsys):
        assert main(["inspect", model_file]) == 0
        out = capsys.readouterr().out
        assert "batch group 0" in out
        assert "'m', 'a'" in out or "['m', 'a']" in out

    def test_intensive_listed(self, capsys):
        assert main(["inspect", "FFT"]) == 0
        out = capsys.readouterr().out
        assert "intensive computing actors: ['fft']" in out


class TestIsa:
    def test_list(self, capsys):
        assert main(["isa"]) == 0
        out = capsys.readouterr().out
        assert "neon" in out and "avx2" in out and "compound" in out

    def test_dump(self, capsys):
        assert main(["isa", "neon"]) == 0
        out = capsys.readouterr().out
        assert "Ins: vmlaq_s32" in out and "vector_bits: 128" in out


class TestRunProfile:
    def test_profile_flag(self, model_file, capsys):
        assert main(["run", model_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "by category" in out and "SIMD" in out

    def test_compiler_choice(self, model_file, capsys):
        assert main(["run", model_file, "--compiler", "clang"]) == 0
        assert "modelled cycles" in capsys.readouterr().out

    def test_generator_choice(self, model_file, capsys):
        assert main(["run", model_file, "--generator", "simulink_coder"]) == 0
        assert "modelled cycles" in capsys.readouterr().out
