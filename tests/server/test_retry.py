"""Retry policy: transience classification and backoff shape."""

import random

import pytest

from repro.errors import CodegenError, ReproError, VerificationError
from repro.server.chaos import ChaosFault
from repro.server.retry import RetryPolicy, TransientFault, is_transient


class TestIsTransient:
    @pytest.mark.parametrize("exc", [
        TransientFault("blip"),
        ChaosFault("injected"),
        OSError(28, "No space left on device"),
        ConnectionResetError(),
    ])
    def test_infrastructure_faults_are_transient(self, exc):
        assert is_transient(exc) is True

    @pytest.mark.parametrize("exc", [
        ReproError("bad model"),
        CodegenError("strict mode"),
        VerificationError("diverged"),
        ValueError("bug"),
        KeyError("bug"),
    ])
    def test_deterministic_faults_are_not(self, exc):
        assert is_transient(exc) is False


class TestRetryPolicy:
    def test_equal_jitter_bounds(self):
        policy = RetryPolicy(attempts=5, base_s=0.1, max_s=1.0, multiplier=2.0)
        rng = random.Random(7)
        for retry_index, raw in enumerate((0.1, 0.2, 0.4, 0.8)):
            for _ in range(50):
                delay = policy.delay_s(retry_index, rng)
                assert raw / 2 <= delay <= raw

    def test_cap_applies(self):
        policy = RetryPolicy(attempts=10, base_s=1.0, max_s=2.0)
        delay = policy.delay_s(9, random.Random(0))
        assert delay <= 2.0

    def test_schedule_length_is_attempts_minus_one(self):
        policy = RetryPolicy(attempts=4)
        assert len(list(policy.delays(random.Random(0)))) == 3
        assert list(RetryPolicy(attempts=1).delays(random.Random(0))) == []

    def test_seeded_schedule_is_reproducible(self):
        policy = RetryPolicy(attempts=4)
        first = list(policy.delays(random.Random(42)))
        second = list(policy.delays(random.Random(42)))
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_s=-1)
