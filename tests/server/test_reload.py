"""Hot config reload: validation, atomicity, and the admin endpoints.

Unit tests cover :mod:`repro.server.config` (the validate-then-swap
contract); the daemon tests drive ``POST /admin/reload`` / ``GET
/admin/config`` / SIGHUP over real HTTP and assert in-flight requests
survive a reload.
"""

import contextlib
import http.client
import io
import json
import threading
import time

import pytest

from repro.server import ChaosMonkey, CodegenDaemon, ServerConfig
from repro.server.config import (
    IMMUTABLE_FIELDS,
    RELOADABLE_FIELDS,
    ConfigError,
    TenantLimits,
    apply_overrides,
    load_config_overrides,
    parse_tenant_spec,
)
from repro.server.retry import RetryPolicy
from repro.service.service import CodegenService


class TestApplyOverrides:
    def test_reloadable_scalar_fields_change(self):
        config = ServerConfig()
        new, changed = apply_overrides(config, {"queue_size": 7,
                                                "deadline_s": 2.5})
        assert new.queue_size == 7
        assert new.deadline_s == 2.5
        assert changed == ["deadline_s", "queue_size"]
        assert config.queue_size == 64  # original untouched

    def test_immutable_fields_are_rejected(self):
        for field in ("port", "workers", "chaos_rate"):
            with pytest.raises(ConfigError, match="boot-time only"):
                apply_overrides(ServerConfig(), {field: 1})

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ConfigError, match="unknown config field"):
            apply_overrides(ServerConfig(), {"qeue_size": 7})

    def test_invalid_values_are_rejected_atomically(self):
        config = ServerConfig()
        with pytest.raises(ConfigError):
            apply_overrides(config, {"queue_size": 0, "deadline_s": 5.0})
        assert config.queue_size == 64

    def test_retry_overrides_merge_into_the_policy(self):
        config = ServerConfig(retry=RetryPolicy(attempts=3))
        new, changed = apply_overrides(config, {"retry": {"attempts": 5}})
        assert new.retry.attempts == 5
        assert changed == ["retry"]
        with pytest.raises(ConfigError, match="retry"):
            apply_overrides(config, {"retry": {"bogus": 1}})

    def test_tenant_overrides_merge_per_name(self):
        config = ServerConfig(tenants={"a": TenantLimits(rate=5.0)})
        new, _ = apply_overrides(config, {"tenants": {
            "a": {"burst": 3},          # merges into the existing entry
            "b": {"rate": 9.0},         # new entry, based on the default
        }})
        assert new.tenants["a"].rate == 5.0
        assert new.tenants["a"].burst == 3
        assert new.tenants["b"].rate == 9.0

    def test_null_removes_a_tenant_override(self):
        config = ServerConfig(tenants={"a": TenantLimits(rate=5.0)})
        new, changed = apply_overrides(config, {"tenants": {"a": None}})
        assert "a" not in new.tenants
        assert changed == ["tenants"]

    def test_bad_tenant_limit_values_are_rejected(self):
        with pytest.raises(ConfigError, match="rate"):
            apply_overrides(ServerConfig(), {"tenants": {"a": {"rate": -1}}})
        with pytest.raises(ConfigError, match="unknown limit field"):
            apply_overrides(ServerConfig(), {"tenants": {"a": {"speed": 1}}})
        with pytest.raises(ConfigError, match="invalid tenant name"):
            apply_overrides(ServerConfig(), {"tenants": {"a b": {"rate": 1}}})

    def test_no_field_is_both_reloadable_and_immutable(self):
        assert not set(RELOADABLE_FIELDS) & set(IMMUTABLE_FIELDS)


class TestConfigFile:
    def test_round_trips_a_json_document(self, tmp_path):
        path = tmp_path / "overrides.json"
        path.write_text(json.dumps({"queue_size": 9}))
        assert load_config_overrides(str(path)) == {"queue_size": 9}

    def test_missing_and_invalid_files_raise_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_config_overrides(str(tmp_path / "nope.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_config_overrides(str(bad))
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="JSON object"):
            load_config_overrides(str(array))


class TestTenantSpec:
    def test_parses_a_full_spec(self):
        name, overrides = parse_tenant_spec(
            "noisy:rate=5,burst=10,max_concurrency=2,weight=1")
        assert name == "noisy"
        assert overrides == {"rate": 5.0, "burst": 10,
                             "max_concurrency": 2, "weight": 1}

    @pytest.mark.parametrize("text", [
        "noisy", "bad name:rate=1", "noisy:", "noisy:rate", "noisy:speed=1",
        "noisy:rate=fast",
    ])
    def test_malformed_specs_are_rejected(self, text):
        with pytest.raises(ConfigError):
            parse_tenant_spec(text)


# ----------------------------------------------------------------------
# Daemon admin endpoints
# ----------------------------------------------------------------------
def make_config(**overrides):
    base = dict(port=0, workers=2, queue_size=8, deadline_s=5.0,
                drain_grace_s=10.0)
    base.update(overrides)
    return ServerConfig(**base)


@contextlib.contextmanager
def running_daemon(config=None, chaos=None):
    daemon = CodegenDaemon(CodegenService(cache=None), config or make_config(),
                           log_stream=io.StringIO())
    if chaos is not None:
        daemon.chaos = chaos
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    port = daemon.wait_ready()
    try:
        yield daemon, port
    finally:
        daemon.request_drain_threadsafe()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon failed to drain"


def call(port, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestAdminEndpoints:
    def test_admin_config_reports_the_reloadable_view(self):
        with running_daemon() as (_, port):
            status, body = call(port, "GET", "/admin/config")
            assert status == 200
            assert body["generation"] == 0
            assert body["reloadable"]["queue_size"] == 8
            assert "default_tenant" in body["reloadable"]

    def test_reload_swaps_config_and_bumps_the_generation(self):
        with running_daemon() as (daemon, port):
            status, body = call(port, "POST", "/admin/reload",
                                {"deadline_s": 2.0, "queue_size": 16})
            assert status == 200
            assert sorted(body["reloaded"]) == ["deadline_s", "queue_size"]
            assert body["generation"] == 1
            assert body["config"]["deadline_s"] == 2.0
            assert "HCG515" in [d["code"] for d in body["diagnostics"]]
            assert daemon.config.queue_size == 16
            status, health = call(port, "GET", "/healthz")
            assert health["config_generation"] == 1
            assert health["queue_capacity"] == 16

    def test_invalid_reload_is_rejected_with_hcg514_and_nothing_changes(self):
        with running_daemon() as (daemon, port):
            before = daemon.config
            status, body = call(port, "POST", "/admin/reload",
                                {"queue_size": 0})
            assert status == 400
            assert "HCG514" in [d["code"] for d in body["diagnostics"]]
            assert daemon.config is before
            assert daemon.config_generation == 0
            status, body = call(port, "POST", "/admin/reload",
                                {"port": 9999})
            assert status == 400
            assert "boot-time only" in body["error"]

    def test_reload_without_body_or_config_path_is_a_400(self):
        with running_daemon() as (_, port):
            status, body = call(port, "POST", "/admin/reload")
            assert status == 400
            assert "config" in body["error"]

    def test_reload_without_body_rereads_the_config_file(self, tmp_path):
        path = tmp_path / "overrides.json"
        path.write_text(json.dumps({"queue_size": 5}))
        config = make_config(config_path=str(path))
        with running_daemon(config) as (daemon, port):
            status, body = call(port, "POST", "/admin/reload")
            assert status == 200
            assert daemon.config.queue_size == 5
            # file edits take effect on the next reload
            path.write_text(json.dumps({"queue_size": 6}))
            status, body = call(port, "POST", "/admin/reload")
            assert status == 200
            assert daemon.config.queue_size == 6
            assert body["generation"] == 2

    def test_sighup_handler_applies_the_config_file(self, tmp_path):
        # A threaded daemon cannot own process signals, so this invokes
        # the registered handler on the daemon's loop — exactly what
        # ``loop.add_signal_handler(SIGHUP, ...)`` does on delivery.
        path = tmp_path / "overrides.json"
        path.write_text(json.dumps({"deadline_s": 1.5}))
        config = make_config(config_path=str(path))
        with running_daemon(config) as (daemon, port):
            daemon._loop.call_soon_threadsafe(daemon._on_sighup)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if daemon.config.deadline_s == 1.5:
                    break
                time.sleep(0.05)
            assert daemon.config.deadline_s == 1.5
            assert daemon.config_generation == 1

    def test_sighup_without_config_path_is_a_logged_noop(self):
        with running_daemon() as (daemon, port):
            daemon._loop.call_soon_threadsafe(daemon._on_sighup)
            time.sleep(0.2)
            assert daemon.config_generation == 0
            status, _ = call(port, "GET", "/healthz")
            assert status == 200  # still serving

    def test_reloaded_tenant_limits_take_effect_for_new_admissions(self):
        with running_daemon() as (_, port):
            payload = {"model": "FIR", "scale": 16, "include_source": False}
            status, _ = call(port, "POST", "/generate", payload)
            assert status == 200
            status, _ = call(port, "POST", "/admin/reload", {
                "tenants": {"greedy": {"rate": 0.001, "burst": 1}},
            })
            assert status == 200
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            try:
                statuses = []
                for _ in range(2):
                    conn.request("POST", "/generate",
                                 body=json.dumps(payload).encode(),
                                 headers={"X-Tenant": "greedy"})
                    response = conn.getresponse()
                    statuses.append(
                        (response.status, json.loads(response.read())))
                assert statuses[0][0] == 200
                assert statuses[1][0] == 429
                assert statuses[1][1]["code"] == "HCG511"
                assert statuses[1][1]["tenant"] == "greedy"
            finally:
                conn.close()

    def test_in_flight_requests_survive_a_reload(self):
        chaos = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=0.6)
        with running_daemon(make_config(workers=1), chaos=chaos) \
                as (daemon, port):
            results = {}

            def slow():
                results["slow"] = call(
                    port, "POST", "/generate",
                    {"model": "FIR", "scale": 16, "include_source": False})

            slow_thread = threading.Thread(target=slow)
            slow_thread.start()
            time.sleep(0.2)  # in flight now
            status, _ = call(port, "POST", "/admin/reload",
                             {"queue_size": 4, "deadline_s": 3.0})
            assert status == 200
            slow_thread.join(timeout=30)
            # admitted before the reload, answered after it: no drop
            assert results["slow"][0] == 200

    def test_admin_paths_reject_wrong_methods(self):
        with running_daemon() as (_, port):
            status, _ = call(port, "POST", "/admin/config")
            assert status == 405
            status, _ = call(port, "GET", "/admin/reload")
            assert status == 405
