"""Chaos monkey: plan-driven determinism and burst scheduling."""

import time

import pytest

from repro.server.chaos import KNOWN_CHAOS, ChaosFault, ChaosMonkey
from repro.server.retry import is_transient
from repro.service.cache import CodegenCache


class TestValidation:
    def test_unknown_fault_fails_fast(self):
        with pytest.raises(ValueError, match="unknown chaos fault"):
            ChaosMonkey(faults=("disk_on_fire",))
        with pytest.raises(ValueError, match="unknown chaos fault"):
            ChaosMonkey(plan={"disk_on_fire": [0]})

    def test_known_faults_cover_the_harness(self):
        assert set(KNOWN_CHAOS) == {
            "worker_crash", "slow_generator", "cache_corrupt", "disk_full",
            "noisy_neighbor",
        }


class TestPlanDriven:
    def test_worker_crash_fires_exactly_on_planned_calls(self):
        monkey = ChaosMonkey(plan={"worker_crash": [1, 3]})
        monkey.on_attempt()  # call 0: quiet
        with pytest.raises(ChaosFault):
            monkey.on_attempt()  # call 1
        monkey.on_attempt()  # call 2: quiet
        with pytest.raises(ChaosFault):
            monkey.on_attempt()  # call 3
        assert monkey.injected["worker_crash"] == 2

    def test_chaos_fault_is_transient(self):
        assert is_transient(ChaosFault("injected")) is True

    def test_disk_full_arms_and_disarms_the_write_hook(self, tmp_path):
        cache = CodegenCache(tmp_path)
        monkey = ChaosMonkey(faults=("disk_full",),
                             plan={"disk_full": [0]})
        monkey.on_attempt(cache=cache)  # call 0: hook armed
        assert cache.inject_write_fault is not None
        with pytest.raises(OSError):
            cache.inject_write_fault()
        monkey.on_attempt(cache=cache)  # call 1: outside the plan, disarmed
        assert cache.inject_write_fault is None

    def test_cache_corrupt_garbles_an_entry(self, tmp_path):
        from tests.service.test_cache import entry

        cache = CodegenCache(tmp_path)
        path = cache.store(entry("a" * 64))
        monkey = ChaosMonkey(plan={"cache_corrupt": [0]})
        monkey.on_attempt(cache=cache)
        assert b"chaos" in path.read_bytes()
        # the daemon-side recovery path: a corrupt entry is a miss
        assert cache.lookup("a" * 64) is None
        assert "HCG305" in [d.code for d in cache.diagnostics]

    def test_slow_generator_stall_aborts_when_abandoned(self):
        monkey = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=30.0)
        started = time.monotonic()
        monkey.on_attempt(abandoned=lambda: True)
        assert time.monotonic() - started < 1.0

    def test_slow_generator_stalls_for_slow_s(self):
        monkey = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=0.1)
        started = time.monotonic()
        monkey.on_attempt(abandoned=lambda: False)
        assert time.monotonic() - started >= 0.1


class TestBurstScheduling:
    def test_long_run_fraction_tracks_rate(self):
        monkey = ChaosMonkey(faults=("worker_crash",), rate=0.25, seed=3)
        crashes = 0
        for _ in range(2000):
            try:
                monkey.on_attempt()
            except ChaosFault:
                crashes += 1
        assert 0.10 <= crashes / 2000 <= 0.45

    def test_faults_arrive_in_contiguous_bursts(self):
        monkey = ChaosMonkey(faults=("worker_crash",), rate=0.2, seed=5,
                             burst_length=8)
        outcomes = []
        for _ in range(500):
            try:
                monkey.on_attempt()
                outcomes.append(False)
            except ChaosFault:
                outcomes.append(True)
        # every run of consecutive faults is exactly one burst long
        runs, current = [], 0
        for fault in outcomes:
            if fault:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert runs, "no bursts fired in 500 calls"
        assert all(run == 8 for run in runs[:-1])  # last may be cut off

    def test_seeded_schedule_is_reproducible(self):
        def record(seed):
            monkey = ChaosMonkey(faults=("worker_crash",), rate=0.3, seed=seed)
            pattern = []
            for _ in range(300):
                try:
                    monkey.on_attempt()
                    pattern.append(0)
                except ChaosFault:
                    pattern.append(1)
            return pattern

        assert record(11) == record(11)
        assert record(11) != record(12)

    def test_snapshot_reports_injections(self):
        monkey = ChaosMonkey(plan={"worker_crash": [0]})
        with pytest.raises(ChaosFault):
            monkey.on_attempt()
        snapshot = monkey.snapshot()
        assert snapshot["calls"] == 1
        assert snapshot["injected"] == {"worker_crash": 1}
