"""Circuit breaker state machine, driven by a fake clock."""

import pytest

from repro.server.breaker import BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker("hcg", threshold=3, cooldown_s=2.0, clock=clock)


class TestTrip:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow() is True

    def test_trips_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow() is False
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker("x", threshold=0)


class TestHalfOpenProbe:
    def trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_elapses_into_half_open(self, breaker, clock):
        self.trip(breaker)
        clock.advance(1.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_exactly_one_probe_is_admitted(self, breaker, clock):
        self.trip(breaker)
        clock.advance(2.1)
        assert breaker.allow() is True   # the probe
        assert breaker.allow() is False  # concurrent traffic stays demoted
        assert breaker.allow() is False

    def test_probe_success_closes_and_counts_recovery(self, breaker, clock):
        self.trip(breaker)
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.recoveries == 1
        assert breaker.allow() is True

    def test_probe_failure_reopens_for_a_fresh_cooldown(self, breaker, clock):
        self.trip(breaker)
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2
        clock.advance(1.0)
        assert breaker.state is BreakerState.OPEN  # new cooldown, not stale
        clock.advance(1.1)
        assert breaker.state is BreakerState.HALF_OPEN


class TestHalfOpenConcurrency:
    def trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_half_open_single_probe_under_concurrency(self, clock):
        """Regression: the HALF_OPEN probe admission is check-then-act;
        without the internal lock, racing callers could all see
        ``probe_in_flight == False`` and fly multiple probes."""
        import threading

        breaker = CircuitBreaker("hcg", threshold=3, cooldown_s=2.0,
                                 clock=clock)
        self.trip(breaker)
        clock.advance(2.1)
        admitted = []
        admitted_lock = threading.Lock()
        barrier = threading.Barrier(16)

        def contend():
            barrier.wait()
            if breaker.allow():
                with admitted_lock:
                    admitted.append(threading.current_thread().name)

        threads = [threading.Thread(target=contend) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(admitted) == 1, f"{len(admitted)} probes flew at once"

    def test_lost_probe_is_reclaimed_after_a_cooldown(self, breaker, clock):
        self.trip(breaker)
        clock.advance(2.1)
        assert breaker.allow() is True   # the probe flies...
        assert breaker.allow() is False  # ...and is never reported back
        clock.advance(1.9)
        assert breaker.allow() is False  # reclaim needs a full cooldown
        clock.advance(0.2)
        assert breaker.allow() is True   # reclaimed: a new probe may fly
        assert breaker.allow() is False  # still exactly one at a time

    def test_success_while_open_does_not_wedge_the_cooldown(self, breaker,
                                                            clock):
        # A coalesced batch can report a success concurrently with the
        # failure that tripped the breaker; the cooldown clock must
        # survive it or OPEN never lazily becomes HALF_OPEN again.
        self.trip(breaker)
        breaker.record_success()
        assert breaker.state is BreakerState.OPEN
        clock.advance(2.1)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow() is True


class TestReconfigure:
    def test_lowered_threshold_applies_to_new_failures(self, breaker):
        breaker.record_failure()
        breaker.reconfigure(threshold=1, cooldown_s=2.0)
        assert breaker.state is BreakerState.CLOSED  # not retroactive
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_open_breaker_keeps_its_cooldown_clock(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.reconfigure(threshold=3, cooldown_s=0.5)
        assert breaker.state is BreakerState.HALF_OPEN  # 1.0s >= new 0.5s

    def test_reconfigure_validates_threshold(self, breaker):
        with pytest.raises(ValueError, match="threshold"):
            breaker.reconfigure(threshold=0, cooldown_s=1.0)


class TestObservability:
    def test_transitions_are_logged_in_order(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.1)
        breaker.allow()
        breaker.record_success()
        moves = [(old, new) for _, old, new in breaker.transitions]
        assert moves == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_snapshot_is_json_ready(self, breaker):
        import json

        snapshot = breaker.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["state"] == "closed"
        assert snapshot["threshold"] == 3
