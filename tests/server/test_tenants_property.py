"""Property tests for the admission token bucket (Hypothesis).

The bucket is the daemon's rate-limit arithmetic; these properties pin
the envelope over *arbitrary* acquire/advance schedules, not just the
handful of unit scenarios:

* grants can never exceed ``burst + rate * elapsed`` (no schedule mints
  tokens out of thin air);
* an idle bucket refills to exactly ``burst`` — never beyond;
* a clock that stalls or runs backwards mints nothing.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.tenants import TokenBucket


class ScriptClock:
    """A clock the test advances explicitly (monotonic by construction
    unless a step is negative on purpose)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


rates = st.floats(min_value=0.1, max_value=1000.0,
                  allow_nan=False, allow_infinity=False)
bursts = st.integers(min_value=1, max_value=100)

#: one schedule step: advance the clock by `dt` then try one acquire
steps = st.lists(
    st.floats(min_value=0.0, max_value=5.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)


@given(rate=rates, burst=bursts, schedule=steps)
@settings(max_examples=200, deadline=None)
def test_grants_never_exceed_rate_over_any_schedule(rate, burst, schedule):
    clock = ScriptClock()
    bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
    granted = 0
    elapsed = 0.0
    for dt in schedule:
        clock.now += dt
        elapsed += dt
        if bucket.try_acquire():
            granted += 1
        # float envelope: allow one ulp-ish slack on the arithmetic
        ceiling = burst + rate * elapsed
        assert granted <= math.floor(ceiling + 1e-6)


@given(rate=rates, burst=bursts,
       drains=st.integers(min_value=0, max_value=100),
       idle_s=st.floats(min_value=0.0, max_value=10_000.0,
                        allow_nan=False, allow_infinity=False))
@settings(max_examples=200, deadline=None)
def test_idle_bucket_refills_to_capacity_and_no_further(rate, burst,
                                                        drains, idle_s):
    clock = ScriptClock()
    bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
    for _ in range(drains):
        bucket.try_acquire()
    clock.now += idle_s
    tokens = bucket.tokens
    assert tokens <= burst + 1e-9
    if idle_s * rate >= burst:  # long enough idle: back to exactly full
        assert tokens == burst


@given(rate=rates, burst=bursts,
       jumps=st.lists(st.floats(min_value=-100.0, max_value=0.0,
                                allow_nan=False, allow_infinity=False),
                      min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_stalled_or_backwards_clock_mints_nothing(rate, burst, jumps):
    clock = ScriptClock()
    bucket = TokenBucket(rate=rate, burst=burst, clock=clock)
    for _ in range(burst):
        assert bucket.try_acquire()
    assert bucket.tokens == 0.0
    for jump in jumps:  # every step is <= 0: time never moves forward
        clock.now += jump
        assert bucket.tokens == 0.0
        assert not bucket.try_acquire()
