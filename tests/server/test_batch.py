"""Request coalescing: compatibility, fault isolation, byte-identity.

Unit tests drive :mod:`repro.server.batch` directly; the end-to-end
tests boot a daemon with a wide batch window and assert HCG513
isolation plus responses identical to unbatched serving.
"""

import contextlib
import http.client
import io
import json
import threading
import time
import types

import pytest

from repro.api import GenerateRequest
from repro.errors import ReproError
from repro.server import ChaosMonkey, CodegenDaemon, ServerConfig
from repro.server.batch import BatchTask, compatible, run_batch, summarize
from repro.server.chaos import ChaosFault
from repro.service.service import CodegenService


def spec(generator="hcg", verify=False):
    return types.SimpleNamespace(generator=generator, verify=verify)


class TestCompatible:
    def test_same_generator_unverified_requests_coalesce(self):
        assert compatible(spec(), spec()) is True

    def test_verify_requests_never_coalesce(self):
        assert compatible(spec(verify=True), spec()) is False
        assert compatible(spec(), spec(verify=True)) is False

    def test_cross_generator_requests_never_coalesce(self):
        assert compatible(spec("hcg"), spec("dfsynth")) is False


def request_for(model="FIR"):
    return GenerateRequest(model=model, generator="hcg")


class TestRunBatch:
    def test_outcomes_in_input_order(self):
        service = CodegenService(cache=None, jobs=2)
        tasks = [BatchTask(request=request_for(m), tenant="t")
                 for m in ("FIR", "DCT", "FIR")]
        outcomes = run_batch(service, tasks)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)
        assert outcomes[0].value.model == "FIR"
        assert outcomes[1].value.model == "DCT"

    def test_results_identical_to_unbatched_service_calls(self):
        service = CodegenService(cache=None, jobs=4)
        requests = [request_for(m) for m in ("FIR", "DCT", "Conv")]
        solo = [service.generate(r) for r in requests]
        batched = run_batch(
            service, [BatchTask(request=r, tenant="t") for r in requests])
        for alone, outcome in zip(solo, batched):
            assert outcome.ok
            # byte-identical artifacts: same C source, same metadata
            assert outcome.value.c_source == alone.c_source
            assert outcome.value.model == alone.model
            assert outcome.value.generator == alone.generator

    def test_one_bad_request_is_isolated_from_batchmates(self):
        service = CodegenService(cache=None, jobs=2)
        tasks = [
            BatchTask(request=request_for("FIR"), tenant="a"),
            BatchTask(request=request_for("no_such_model.xml"), tenant="b"),
            BatchTask(request=request_for("DCT"), tenant="a"),
        ]
        outcomes = run_batch(service, tasks)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ReproError)
        report = summarize(outcomes)
        assert report == {"size": 3, "ok": 2, "isolated": 1}

    def test_chaos_faults_hit_only_their_member(self):
        service = CodegenService(cache=None, jobs=1)
        chaos = ChaosMonkey(plan={"worker_crash": [1]})
        tasks = [BatchTask(request=request_for("FIR"), tenant="t")
                 for _ in range(3)]
        outcomes = run_batch(service, tasks, chaos=chaos)
        assert outcomes[0].ok and outcomes[2].ok
        assert isinstance(outcomes[1].error, ChaosFault)


# ----------------------------------------------------------------------
# End-to-end: the daemon's coalescing path
# ----------------------------------------------------------------------
FAST = dict(port=0, workers=1, queue_size=32, deadline_s=10.0,
            drain_grace_s=10.0, breaker_threshold=50,
            breaker_cooldown_s=0.2)


@contextlib.contextmanager
def running_daemon(config, chaos=None):
    daemon = CodegenDaemon(CodegenService(cache=None, jobs=4), config,
                           log_stream=io.StringIO())
    if chaos is not None:
        daemon.chaos = chaos
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    port = daemon.wait_ready()
    try:
        yield daemon, port
    finally:
        daemon.request_drain_threadsafe()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon failed to drain"


def post(port, payload, path="/generate"):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=json.dumps(payload).encode())
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def fire_concurrently(port, payloads):
    results = [None] * len(payloads)

    def one(i):
        results[i] = post(port, payloads[i])

    threads = [threading.Thread(target=one, args=(i,))
               for i in range(len(payloads))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    return results


class TestDaemonCoalescing:
    def test_queued_compatible_requests_ride_one_batch(self):
        # one worker, stalled by a slow first request: the followers
        # queue up inside the (wide) batch window and coalesce
        config = ServerConfig(batch_window_s=0.5, batch_max=8, **FAST)
        chaos = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=0.4)
        with running_daemon(config, chaos=chaos) as (daemon, port):
            blocker = threading.Thread(
                target=post, args=(port, {"model": "FIR", "scale": 16,
                                          "include_source": False}))
            blocker.start()
            time.sleep(0.1)  # the blocker owns the only worker
            payloads = [{"model": "DCT", "scale": 16, "include_source": False}
                        for _ in range(4)]
            results = fire_concurrently(port, payloads)
            blocker.join(timeout=30)
            counters = dict(daemon.tracer.counters)
        assert all(status == 200 for status, _ in results)
        assert counters.get("server.batch.dispatched", 0) >= 1
        assert counters.get("server.batch.requests", 0) >= 2

    def test_batched_response_equals_unbatched_response(self):
        payload = {"model": "FIR", "scale": 16, "seed": 7}
        solo_config = ServerConfig(batch_window_s=0.0, batch_max=1, **FAST)
        with running_daemon(solo_config) as (_, port):
            status, solo = post(port, payload)
            assert status == 200

        batch_config = ServerConfig(batch_window_s=0.5, batch_max=8, **FAST)
        chaos = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=0.4)
        with running_daemon(batch_config, chaos=chaos) as (daemon, port):
            blocker = threading.Thread(
                target=post, args=(port, {"model": "DCT", "scale": 16,
                                          "include_source": False}))
            blocker.start()
            time.sleep(0.1)  # the blocker owns the only worker
            results = fire_concurrently(port, [payload, payload])
            blocker.join(timeout=30)
            counters = daemon.tracer.counters
            assert counters.get("server.batch.dispatched", 0) >= 1

        for status, body in results:
            assert status == 200
            # byte-identical artifact and metadata, batched or not
            assert body["c_source"] == solo["c_source"]
            assert body["model"] == solo["model"]
            assert body["generator"] == solo["generator"]

    def test_batchmate_fault_is_isolated_with_hcg513(self):
        config = ServerConfig(batch_window_s=0.5, batch_max=8, **FAST)
        chaos = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=0.4)
        with running_daemon(config, chaos=chaos) as (daemon, port):
            blocker = threading.Thread(
                target=post, args=(port, {"model": "FIR", "scale": 16,
                                          "include_source": False}))
            blocker.start()
            time.sleep(0.1)
            results = fire_concurrently(port, [
                {"model": "DCT", "scale": 16, "include_source": False},
                {"model": "no_such_model.xml"},  # the poisoned batchmate
                {"model": "DCT", "scale": 16, "include_source": False},
            ])
            blocker.join(timeout=30)

        statuses = sorted(status for status, _ in results)
        assert statuses == [200, 200, 422]
        poisoned = next(body for status, body in results if status == 422)
        assert "HCG513" in [d["code"] for d in poisoned.get("diagnostics", ())]

    def test_verify_requests_are_never_coalesced(self):
        config = ServerConfig(batch_window_s=0.5, batch_max=8, **FAST)
        chaos = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=0.4)
        with running_daemon(config, chaos=chaos) as (daemon, port):
            blocker = threading.Thread(
                target=post, args=(port, {"model": "FIR", "scale": 16,
                                          "include_source": False}))
            blocker.start()
            time.sleep(0.1)
            results = [None] * 3

            def verify_one(i):
                results[i] = post(
                    port, {"model": "DCT", "scale": 8,
                           "include_source": False}, path="/verify")

            threads = [threading.Thread(target=verify_one, args=(i,))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            blocker.join(timeout=30)
            counters = dict(daemon.tracer.counters)
        assert all(status == 200 for status, _ in results)
        assert all(body["verified"] is True for _, body in results)
        assert counters.get("server.batch.dispatched", 0) == 0
