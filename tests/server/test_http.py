"""Minimal HTTP framing: parsing, limits, serialization."""

import asyncio
import json

import pytest

from repro.server.http import (
    MAX_BODY_BYTES,
    HttpProtocolError,
    HttpRequest,
    read_request,
    response_bytes,
)


def parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_parses_a_post_with_body(self):
        body = b'{"model": "FIR"}'
        raw = (b"POST /generate HTTP/1.1\r\n"
               b"Content-Type: application/json\r\n"
               b"Content-Length: " + str(len(body)).encode() + b"\r\n"
               b"\r\n" + body)
        request = parse(raw)
        assert request.method == "POST"
        assert request.path == "/generate"
        assert request.json() == {"model": "FIR"}
        assert request.keep_alive is True

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_header(self):
        raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert parse(raw).keep_alive is False

    @pytest.mark.parametrize("raw", [
        b"GARBAGE\r\n\r\n",
        b"GET /x\r\n\r\n",
        b"GET /x NOTHTTP\r\n\r\n",
    ])
    def test_malformed_request_line_is_a_400(self, raw):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_oversized_body_is_a_413(self):
        raw = (b"POST /generate HTTP/1.1\r\n"
               b"Content-Length: " + str(MAX_BODY_BYTES + 1).encode() +
               b"\r\n\r\n")
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 413

    def test_bad_content_length_is_a_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        with pytest.raises(HttpProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400


class TestJsonBody:
    def test_empty_body_is_an_empty_object(self):
        request = HttpRequest("POST", "/generate", {}, b"")
        assert request.json() == {}

    def test_non_json_body_is_a_400(self):
        request = HttpRequest("POST", "/generate", {}, b"not json")
        with pytest.raises(HttpProtocolError):
            request.json()

    def test_non_object_body_is_a_400(self):
        request = HttpRequest("POST", "/generate", {}, b"[1, 2]")
        with pytest.raises(HttpProtocolError):
            request.json()


class TestResponseBytes:
    def test_round_trips_through_the_parser(self):
        raw = response_bytes(200, {"ok": True}, (("Retry-After", "3"),))
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Retry-After: 3" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert json.loads(body) == {"ok": True}

    def test_close_header(self):
        raw = response_bytes(503, {}, keep_alive=False)
        assert b"Connection: close" in raw


class TestHeaders:
    def test_lookup_is_case_insensitive(self):
        from repro.server.http import Headers

        headers = Headers({"X-Tenant": "acme"})
        assert headers["x-tenant"] == "acme"
        assert headers["X-TENANT"] == "acme"
        assert headers.get("X-Tenant") == "acme"
        assert "x-TeNaNt" in headers
        assert headers.get("missing", "fallback") == "fallback"

    def test_last_write_wins_whatever_the_casing(self):
        from repro.server.http import Headers

        headers = Headers()
        headers["Content-Type"] = "text/plain"
        headers["content-type"] = "application/json"
        assert len(headers) == 1
        assert headers["CONTENT-TYPE"] == "application/json"
        del headers["Content-type"]
        assert "content-type" not in headers

    def test_init_accepts_dicts_and_pairs(self):
        from repro.server.http import Headers

        assert Headers([("A", "1"), ("B", "2")])["a"] == "1"
        assert dict(Headers({"A": "1"})) == {"a": "1"}

    def test_read_request_folds_header_case(self):
        raw = (b"POST /generate HTTP/1.1\r\n"
               b"X-TENANT: acme\r\n"
               b"CONTENT-length: 2\r\n"
               b"\r\n{}")
        request = parse(raw)
        assert request.headers.get("x-tenant") == "acme"
        assert request.headers.get("X-Tenant") == "acme"
        assert request.json() == {}

    def test_connection_close_detected_case_insensitively(self):
        raw = b"GET /healthz HTTP/1.1\r\nCONNECTION: Close\r\n\r\n"
        assert parse(raw).keep_alive is False
