"""Multi-tenant admission: token bucket, quotas, weighted-fair dequeue.

All clocks are fake and injected — nothing here sleeps.  Async table
methods run under ``asyncio.run`` (the table is event-loop-only by
design, matching the daemon).
"""

import asyncio

import pytest

from repro.server.config import DEFAULT_TENANT, ServerConfig, TenantLimits
from repro.server.tenants import (
    MAX_TRACKED_TENANTS,
    ShedDecision,
    TenantTable,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTokenBucket:
    def test_starts_full_and_spends_down(self, clock):
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert bucket.tokens == 3.0
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_rate(self, clock):
        bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        clock.advance(0.5)  # 1 token minted
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(rate=100.0, burst=5, clock=clock)
        clock.advance(1000.0)
        assert bucket.tokens == 5.0

    def test_backwards_clock_mints_nothing(self, clock):
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        clock.now -= 100.0
        assert bucket.tokens == 0.0
        assert not bucket.try_acquire()

    def test_time_until_is_an_honest_retry_after(self, clock):
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.time_until() == 0.0
        assert bucket.try_acquire()
        assert bucket.time_until() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.time_until() == 0.0

    def test_reconfigure_clamps_but_never_mints(self, clock):
        bucket = TokenBucket(rate=1.0, burst=10, clock=clock)
        bucket.reconfigure(rate=5.0, burst=2)
        assert bucket.tokens == 2.0  # clamped down, no free burst
        bucket.reconfigure(rate=5.0, burst=10)
        assert bucket.tokens == 2.0  # raising burst does not refill

    def test_validation(self, clock):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0, burst=1, clock=clock)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1, burst=0, clock=clock)


def make_config(**overrides):
    base = dict(port=0, queue_size=8)
    base.update(overrides)
    return ServerConfig(**base)


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def config(self, **tenant_kw):
        limits = TenantLimits(**tenant_kw) if tenant_kw else TenantLimits()
        return make_config(default_tenant=limits)

    def test_admit_then_next_round_trips_the_item(self, clock):
        async def scenario():
            table = TenantTable(self.config(), clock=clock)
            assert await table.admit("a", "item-1", 1) is None
            assert table.qsize() == 1
            item = await table.next()
            assert item == "item-1"
            assert table.in_flight() == 1
            await table.done(item)
            assert table.in_flight() == 0

        run(scenario())

    def test_global_capacity_sheds_hcg502_before_tenant_checks(self, clock):
        async def scenario():
            table = TenantTable(make_config(queue_size=1), clock=clock)
            assert await table.admit("a", "x", 7) is None
            decision = await table.admit("b", "y", 7)
            assert isinstance(decision, ShedDecision)
            assert decision.code == "HCG502"
            assert decision.retry_after_s == 7

        run(scenario())

    def test_tenant_queue_quota_sheds_hcg512(self, clock):
        async def scenario():
            config = self.config(max_queued=2)
            table = TenantTable(config, clock=clock)
            assert await table.admit("a", "x", 1) is None
            assert await table.admit("a", "y", 1) is None
            decision = await table.admit("a", "z", 1)
            assert decision.code == "HCG512"
            # another tenant still has room: quota is per tenant
            assert await table.admit("b", "w", 1) is None

        run(scenario())

    def test_rate_limit_sheds_hcg511_with_honest_retry_after(self, clock):
        async def scenario():
            config = self.config(rate=0.5, burst=1)
            table = TenantTable(config, clock=clock)
            assert await table.admit("a", "x", 1) is None
            decision = await table.admit("a", "y", 1)
            assert decision.code == "HCG511"
            assert decision.retry_after_s == 2  # ceil(1 token / 0.5 per s)
            clock.advance(2.0)
            assert await table.admit("a", "z", 1) is None

        run(scenario())

    def test_shed_requests_never_spend_tokens(self, clock):
        async def scenario():
            config = self.config(rate=1.0, burst=1, max_queued=1)
            table = TenantTable(config, clock=clock)
            assert await table.admit("a", "x", 1) is None
            for _ in range(5):  # quota sheds, before the bucket is consulted
                decision = await table.admit("a", object(), 1)
                assert decision.code == "HCG512"
            item = await table.next()
            await table.done(item)
            clock.advance(1.0)  # refills the one spent token
            assert await table.admit("a", "y", 1) is None

        run(scenario())

    def test_record_shed_feeds_the_snapshot(self, clock):
        async def scenario():
            config = self.config(rate=1.0, burst=1)
            table = TenantTable(config, clock=clock)
            await table.admit("a", "x", 1)
            decision = await table.admit("a", "y", 1)
            table.record_shed("a", decision.code)
            snap = table.snapshot()
            assert snap["a"]["shed_rate_limit"] == 1
            assert snap["a"]["admitted"] == 1

        run(scenario())


class TestWeightedFairDequeue:
    def test_service_shares_follow_weights(self, clock):
        async def scenario():
            config = make_config(queue_size=64, tenants={
                "heavy": TenantLimits(weight=2),
                "light": TenantLimits(weight=1),
            })
            table = TenantTable(config, clock=clock)
            for i in range(12):
                assert await table.admit("heavy", ("heavy", i), 1) is None
            for i in range(12):
                assert await table.admit("light", ("light", i), 1) is None
            order = []
            for _ in range(9):
                item = await table.next()
                order.append(item[0])
                await table.done(item)
            # both backlogged: heavy gets two pulls per light pull
            assert order.count("heavy") == 6
            assert order.count("light") == 3

        run(scenario())

    def test_backlogged_tenant_never_starves_the_other(self, clock):
        async def scenario():
            config = make_config(queue_size=64)
            table = TenantTable(config, clock=clock)
            for i in range(10):
                await table.admit("noisy", ("noisy", i), 1)
            await table.admit("polite", ("polite", 0), 1)
            pulls = []
            for _ in range(3):
                item = await table.next()
                pulls.append(item[0])
                await table.done(item)
            assert "polite" in pulls  # served within one ring pass

        run(scenario())

    def test_concurrency_cap_skips_without_losing_the_turn(self, clock):
        async def scenario():
            config = make_config(queue_size=64, tenants={
                "capped": TenantLimits(max_concurrency=1),
            })
            table = TenantTable(config, clock=clock)
            await table.admit("capped", "c1", 1)
            await table.admit("capped", "c2", 1)
            await table.admit("other", "o1", 1)
            first = await table.next()   # capped's first item
            second = await table.next()  # capped at cap: other is served
            assert first == "c1"
            assert second == "o1"
            await table.done(first)
            third = await table.next()   # cap released: capped resumes
            assert third == "c2"

        run(scenario())


class TestCollectCompatible:
    def test_extracts_only_matching_items_in_fifo_order(self, clock):
        async def scenario():
            table = TenantTable(make_config(queue_size=16), clock=clock)
            for i in range(4):
                await table.admit("a", ("keep" if i % 2 else "take", i), 1)
            taken = await table.collect_compatible(
                lambda item: item[0] == "take", limit=8, window_s=0.0)
            assert [t[1] for t in taken] == [0, 2]
            # non-matching items stayed queued, order preserved
            rest = [await table.next(), await table.next()]
            assert [r[1] for r in rest] == [1, 3]

        run(scenario())

    def test_respects_tenant_concurrency_quota(self, clock):
        async def scenario():
            config = make_config(queue_size=16, tenants={
                "a": TenantLimits(max_concurrency=2),
            })
            table = TenantTable(config, clock=clock)
            for i in range(4):
                await table.admit("a", i, 1)
            leader = await table.next()  # occupies 1 of 2 slots
            mates = await table.collect_compatible(
                lambda item: True, limit=8, window_s=0.0)
            assert leader == 0
            assert mates == [1]  # only one slot of headroom remained

        run(scenario())

    def test_collected_items_count_as_in_flight(self, clock):
        async def scenario():
            table = TenantTable(make_config(queue_size=16), clock=clock)
            await table.admit("a", "x", 1)
            taken = await table.collect_compatible(lambda i: True,
                                                   limit=1, window_s=0.0)
            assert taken == ["x"]
            assert table.qsize() == 0
            assert table.in_flight() == 1
            await table.done("x")
            await table.join()  # all accounted for

        run(scenario())


class TestLifecycle:
    def test_join_waits_for_done(self, clock):
        async def scenario():
            table = TenantTable(make_config(), clock=clock)
            await table.admit("a", "x", 1)
            item = await table.next()

            async def finish():
                await asyncio.sleep(0)
                await table.done(item)

            await asyncio.gather(table.join(), finish())

        run(scenario())

    def test_drain_items_pops_everything_queued(self, clock):
        async def scenario():
            table = TenantTable(make_config(), clock=clock)
            for tenant in ("a", "b"):
                for i in range(2):
                    await table.admit(tenant, (tenant, i), 1)
            abandoned = await table.drain_items()
            assert len(abandoned) == 4
            assert table.qsize() == 0
            await table.join()  # nothing left unfinished

        run(scenario())

    def test_eviction_drops_idle_tenants_but_never_default(self, clock):
        async def scenario():
            table = TenantTable(make_config(queue_size=MAX_TRACKED_TENANTS * 2),
                                clock=clock)
            await table.admit(DEFAULT_TENANT, "anchor", 1)
            item = await table.next()
            await table.done(item)  # default tenant is idle but tracked
            for i in range(MAX_TRACKED_TENANTS + 5):
                tenant = f"t{i}"
                await table.admit(tenant, tenant, 1)
                await table.done(await table.next())
            snap = table.snapshot()
            assert DEFAULT_TENANT in snap
            assert len(snap) <= MAX_TRACKED_TENANTS

        run(scenario())

    def test_reconfigure_tightens_limits_without_free_burst(self, clock):
        async def scenario():
            table = TenantTable(make_config(
                default_tenant=TenantLimits(rate=100.0, burst=100)),
                clock=clock)
            for i in range(3):
                assert await table.admit("a", i, 1) is None
            table.reconfigure(make_config(
                default_tenant=TenantLimits(rate=0.5, burst=1)))
            # the ~97 accrued tokens were clamped to the new burst of 1:
            # one more admission passes, the next is rate-shed
            assert await table.admit("a", 98, 1) is None
            decision = await table.admit("a", 99, 1)
            assert decision is not None
            assert decision.code == "HCG511"

        run(scenario())
