"""End-to-end daemon behaviour over real HTTP connections.

Each test boots a :class:`CodegenDaemon` on an ephemeral port in a
background thread and speaks to it with ``http.client``.  Chaos is
driven by explicit per-call plans (never random), so every failure-mode
assertion is deterministic.
"""

import contextlib
import http.client
import io
import json
import threading
import time

import pytest

from repro.server import ChaosMonkey, CodegenDaemon, ServerConfig
from repro.server.retry import RetryPolicy
from repro.service.service import CodegenService

FAST_RETRY = RetryPolicy(attempts=3, base_s=0.01, max_s=0.05)


def make_config(**overrides):
    base = dict(
        port=0, workers=2, queue_size=8, deadline_s=5.0, drain_grace_s=10.0,
        retry=FAST_RETRY, breaker_threshold=2, breaker_cooldown_s=0.2,
    )
    base.update(overrides)
    return ServerConfig(**base)


@contextlib.contextmanager
def running_daemon(config=None, chaos=None, service=None):
    service = service if service is not None else CodegenService(cache=None)
    daemon = CodegenDaemon(service, config or make_config(),
                           log_stream=io.StringIO())
    if chaos is not None:
        daemon.chaos = chaos
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    port = daemon.wait_ready()
    try:
        yield daemon, port
    finally:
        daemon.request_drain_threadsafe()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon failed to drain"


class Http:
    """One keep-alive connection to the daemon under test."""

    def __init__(self, port):
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)

    def request(self, method, path, payload=None, headers=None):
        body = json.dumps(payload).encode() if payload is not None else None
        self.conn.request(method, path, body=body, headers=headers or {})
        response = self.conn.getresponse()
        data = json.loads(response.read())
        headers = dict(response.getheaders())
        return response.status, data, headers

    def close(self):
        self.conn.close()


@contextlib.contextmanager
def client(port):
    http_client = Http(port)
    try:
        yield http_client
    finally:
        http_client.close()


def codes_of(body):
    return [d["code"] for d in body.get("diagnostics", ())]


class TestHappyPath:
    def test_generate_round_trip(self):
        with running_daemon() as (_, port), client(port) as c:
            status, body, _ = c.request("POST", "/generate",
                                        {"model": "FIR", "scale": 16})
            assert status == 200
            assert body["model"] == "FIR"
            assert body["generator"] == "hcg"
            assert body["demoted"] is False
            assert "void" in body["c_source"]

    def test_verify_endpoint_verifies(self):
        with running_daemon() as (_, port), client(port) as c:
            status, body, _ = c.request(
                "POST", "/verify",
                {"model": "DCT", "scale": 8, "include_source": False})
            assert status == 200
            assert body["verified"] is True
            assert "c_source" not in body

    def test_keep_alive_serves_many_requests_on_one_connection(self):
        with running_daemon() as (_, port), client(port) as c:
            for _ in range(3):
                status, _, _ = c.request("POST", "/generate",
                                         {"model": "FIR", "scale": 16,
                                          "include_source": False})
                assert status == 200

    def test_healthz_and_metrics(self):
        with running_daemon() as (daemon, port), client(port) as c:
            c.request("POST", "/generate", {"model": "FIR", "scale": 16,
                                            "include_source": False})
            status, health, _ = c.request("GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["queue_capacity"] == 8
            status, metrics, _ = c.request("GET", "/metrics")
            assert status == 200
            assert metrics["counters"]["server.request.accepted"] >= 1
            assert metrics["counters"]["server.request.ok"] >= 1
            assert metrics["latency_ms"]["count"] >= 1
            assert metrics["queue"]["capacity"] == 8
            assert metrics["service"]["jobs"] == daemon.service.jobs


class TestValidation:
    def test_unknown_endpoint_is_404(self):
        with running_daemon() as (_, port), client(port) as c:
            status, _, _ = c.request("GET", "/nope")
            assert status == 404

    def test_wrong_method_is_405(self):
        with running_daemon() as (_, port), client(port) as c:
            status, _, _ = c.request("GET", "/generate")
            assert status == 405

    @pytest.mark.parametrize("payload,match", [
        ({}, "model"),
        ({"model": "FIR", "bogus": 1}, "unknown request field"),
        ({"model": "FIR", "generator": "gcc"}, "unknown generator"),
        ({"model": "FIR", "scale": 1}, "scale"),
        ({"model": "nope.xml", "scale": 4}, "scale"),
        ({"model": "FIR", "deadline_s": -1}, "deadline_s"),
        ({"model": "FIR", "options": {"junk": 1}}, "unknown option"),
        ({"model": "FIR", "arch": "z80"}, "unknown arch"),
    ])
    def test_bad_payloads_are_400(self, payload, match):
        with running_daemon() as (_, port), client(port) as c:
            status, body, _ = c.request("POST", "/generate", payload)
            assert status == 400
            assert match in body["error"]

    def test_model_fault_is_422_not_500(self):
        with running_daemon() as (_, port), client(port) as c:
            status, body, _ = c.request("POST", "/generate",
                                        {"model": "no_such_model.xml"})
            assert status == 422
            assert "error" in body


class TestDeadlines:
    def test_slow_work_is_cancelled_with_hcg501(self):
        chaos = ChaosMonkey(plan={"slow_generator": list(range(10))},
                            slow_s=5.0)
        with running_daemon(chaos=chaos) as (_, port), client(port) as c:
            started = time.monotonic()
            status, body, _ = c.request(
                "POST", "/generate",
                {"model": "FIR", "scale": 16, "deadline_s": 0.3})
            elapsed = time.monotonic() - started
            assert status == 504
            assert body["code"] == "HCG501"
            assert elapsed < 3.0  # answered at the deadline, not slow_s

    def test_request_expired_in_queue_is_shed_with_hcg503(self):
        chaos = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=1.0)
        with running_daemon(make_config(workers=1), chaos=chaos) as (_, port):
            results = {}

            def hog():
                with client(port) as c:
                    results["hog"] = c.request(
                        "POST", "/generate",
                        {"model": "FIR", "scale": 16, "include_source": False})

            hog_thread = threading.Thread(target=hog)
            hog_thread.start()
            time.sleep(0.2)  # the hog owns the only worker
            with client(port) as c:
                status, body, _ = c.request(
                    "POST", "/generate",
                    {"model": "FIR", "scale": 16, "deadline_s": 0.1})
            hog_thread.join(timeout=30)
            assert status == 504
            assert body["code"] == "HCG503"
            assert results["hog"][0] == 200


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self):
        chaos = ChaosMonkey(plan={"slow_generator": list(range(20))},
                            slow_s=1.0)
        config = make_config(workers=1, queue_size=1)
        with running_daemon(config, chaos=chaos) as (_, port):
            statuses = []
            lock = threading.Lock()

            def fire():
                with client(port) as c:
                    result = c.request(
                        "POST", "/generate",
                        {"model": "FIR", "scale": 16,
                         "include_source": False, "deadline_s": 4.0})
                    with lock:
                        statuses.append(result)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            shed = [r for r in statuses if r[0] == 429]
            assert shed, f"no 429 in {[r[0] for r in statuses]}"
            status, body, headers = shed[0]
            assert body["code"] == "HCG502"
            assert int(headers["Retry-After"]) >= 1


class TestRetries:
    def test_one_transient_crash_is_retried_to_success(self):
        chaos = ChaosMonkey(plan={"worker_crash": [0]})
        with running_daemon(chaos=chaos) as (daemon, port), client(port) as c:
            status, body, _ = c.request(
                "POST", "/generate",
                {"model": "FIR", "scale": 16, "include_source": False})
            assert status == 200
            assert "HCG506" in codes_of(body)
            _, metrics, _ = c.request("GET", "/metrics")
            assert metrics["counters"]["server.retry.attempts"] == 1

    def test_exhausted_retries_surface_hcg507(self):
        chaos = ChaosMonkey(plan={"worker_crash": [0, 1, 2]})
        with running_daemon(chaos=chaos) as (_, port), client(port) as c:
            status, body, _ = c.request(
                "POST", "/generate",
                {"model": "FIR", "scale": 16, "include_source": False})
            assert status == 500
            assert body["code"] == "HCG507"
            assert "ChaosFault" in body["error"]


class TestCircuitBreaker:
    def test_trip_demote_probe_recover(self):
        # attempts=1: each crash is final, so two requests trip the
        # threshold-2 breaker deterministically
        config = make_config(retry=RetryPolicy(attempts=1), workers=1)
        chaos = ChaosMonkey(plan={"worker_crash": [0, 1]})
        with running_daemon(config, chaos=chaos) as (daemon, port), \
                client(port) as c:
            payload = {"model": "FIR", "scale": 16, "include_source": False}
            for _ in range(2):
                status, body, _ = c.request("POST", "/generate", payload)
                assert status == 500
                assert body["code"] == "HCG505"
            # breaker open: traffic demotes to the fallback generator
            status, body, _ = c.request("POST", "/generate", payload)
            assert status == 200
            assert body["demoted"] is True
            assert body["generator"] == "simulink_coder"
            assert body["requested_generator"] == "hcg"
            assert "HCG504" in codes_of(body)
            # after the cooldown the next request is the half-open probe;
            # chaos is quiet now, so it succeeds and closes the breaker
            time.sleep(0.3)
            status, body, _ = c.request("POST", "/generate", payload)
            assert status == 200
            assert body["demoted"] is False
            _, metrics, _ = c.request("GET", "/metrics")
            counters = metrics["counters"]
            assert counters["server.breaker.trips"] == 1
            assert counters["server.breaker.recoveries"] == 1
            assert counters["server.breaker.demoted"] >= 1
            assert metrics["breakers"]["hcg"]["state"] == "closed"

    def test_model_errors_do_not_count_toward_the_breaker(self):
        with running_daemon() as (daemon, port), client(port) as c:
            for _ in range(4):
                status, _, _ = c.request("POST", "/generate",
                                         {"model": "no_such.xml"})
                assert status == 422
            status, _, _ = c.request(
                "POST", "/generate",
                {"model": "FIR", "scale": 16, "include_source": False})
            assert status == 200
            _, metrics, _ = c.request("GET", "/metrics")
            assert metrics["counters"].get("server.breaker.trips", 0) == 0


class TestTenants:
    def test_x_tenant_header_routes_accounting(self):
        with running_daemon() as (daemon, port), client(port) as c:
            payload = {"model": "FIR", "scale": 16, "include_source": False}
            status, _, _ = c.request("POST", "/generate", payload,
                                     headers={"X-Tenant": "acme"})
            assert status == 200
            _, metrics, _ = c.request("GET", "/metrics")
            assert metrics["tenants"]["acme"]["served"] == 1

    def test_tenant_rate_shed_is_429_hcg511_with_retry_after(self):
        from repro.server import TenantLimits

        config = make_config(tenants={
            "greedy": TenantLimits(rate=0.1, burst=2),
        })
        with running_daemon(config) as (_, port), client(port) as c:
            payload = {"model": "FIR", "scale": 16, "include_source": False}
            answers = [c.request("POST", "/generate", payload,
                                 headers={"x-tenant": "greedy"})
                       for _ in range(3)]
            assert [status for status, _, _ in answers[:2]] == [200, 200]
            status, body, headers = answers[2]
            assert status == 429
            assert body["code"] == "HCG511"
            assert body["tenant"] == "greedy"
            assert int(headers["Retry-After"]) >= 1
            # anonymous traffic is unaffected by the greedy tenant
            status, _, _ = c.request("POST", "/generate", payload)
            assert status == 200

    def test_tenant_queue_quota_shed_is_429_hcg512(self):
        from repro.server import TenantLimits

        chaos = ChaosMonkey(plan={"slow_generator": list(range(8))},
                            slow_s=1.0)
        config = make_config(workers=1, tenants={
            "bursty": TenantLimits(max_queued=1, max_concurrency=1),
        })
        with running_daemon(config, chaos=chaos) as (_, port):
            answers = []
            lock = threading.Lock()

            def fire():
                with client(port) as c:
                    result = c.request(
                        "POST", "/generate",
                        {"model": "FIR", "scale": 16,
                         "include_source": False, "deadline_s": 4.0},
                        headers={"X-Tenant": "bursty"})
                    with lock:
                        answers.append(result)

            threads = [threading.Thread(target=fire) for _ in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            quota_shed = [r for r in answers
                          if r[0] == 429 and r[1]["code"] == "HCG512"]
            assert quota_shed, f"no HCG512 in {[r[1].get('code') for r in answers]}"
            assert int(quota_shed[0][2]["Retry-After"]) >= 1

    def test_invalid_tenant_name_is_a_400(self):
        with running_daemon() as (_, port), client(port) as c:
            status, body, _ = c.request(
                "POST", "/generate",
                {"model": "FIR", "scale": 16, "include_source": False},
                headers={"X-Tenant": "no spaces allowed"})
            assert status == 400
            assert "X-Tenant" in body["error"]


class TestDrain:
    def test_accepted_requests_survive_the_drain(self):
        chaos = ChaosMonkey(plan={"slow_generator": [0]}, slow_s=0.5)
        with running_daemon(make_config(workers=1), chaos=chaos) \
                as (daemon, port):
            results = {}

            def slow():
                with client(port) as c:
                    results["slow"] = c.request(
                        "POST", "/generate",
                        {"model": "FIR", "scale": 16, "include_source": False})

            slow_thread = threading.Thread(target=slow)
            slow_thread.start()
            time.sleep(0.15)  # in flight now
            with client(port) as c:
                c.request("GET", "/healthz")  # keep-alive connection is open
                daemon.request_drain_threadsafe()
                time.sleep(0.05)
                # new work on an existing connection is rejected politely
                status, body, _ = c.request(
                    "POST", "/generate",
                    {"model": "FIR", "scale": 16, "include_source": False})
                assert status == 503
                assert body["code"] == "HCG508"
            slow_thread.join(timeout=30)
            # the in-flight request was served, not dropped
            assert results["slow"][0] == 200
        assert daemon.drained is True

    def test_drain_flushes_file_backed_state(self, tmp_path):
        from repro.api import CodegenOptions

        options = CodegenOptions(policy="permissive",
                                 cache_dir=str(tmp_path), use_cache=True)
        service = CodegenService.from_options(options)
        with running_daemon(service=service) as (daemon, port):
            with client(port) as c:
                status, _, _ = c.request(
                    "POST", "/generate",
                    {"model": "FIR", "scale": 16, "include_source": False})
                assert status == 200
        # the context exit drains; histories must be on disk afterwards
        histories = list((tmp_path / "history").glob("selection_*.json"))
        assert histories, "drain did not persist the selection history"
