"""Unit and property tests for the shared elementwise op semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ops
from repro.dtypes import DataType


class TestOpTable:
    def test_all_ops_have_positive_cost(self):
        for info in ops.OPS.values():
            assert info.base_cost > 0

    def test_op_info_unknown_name(self):
        with pytest.raises(KeyError, match="unknown elementwise op"):
            ops.op_info("Frobnicate")

    def test_arity_counts(self):
        assert ops.op_info("Add").arity == 2
        assert ops.op_info("Abs").arity == 1
        assert ops.op_info("Shr").arity == 1
        assert ops.op_info("Shr").needs_imm

    def test_dtype_support(self):
        assert not ops.op_info("BitAnd").supports(DataType.F32)
        assert not ops.op_info("Sqrt").supports(DataType.I32)
        assert ops.op_info("Add").supports(DataType.I8)
        assert ops.op_info("Add").supports(DataType.F64)

    def test_commutativity_flags(self):
        assert ops.op_info("Add").commutative
        assert ops.op_info("Mul").commutative
        assert not ops.op_info("Sub").commutative
        assert not ops.op_info("Div").commutative

    def test_scalar_op_names_sorted_and_stable(self):
        names = ops.scalar_op_names()
        assert names == tuple(sorted(names))
        assert "Add" in names and "Cast" in names


class TestApplyOpErrors:
    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="expects 2 operand"):
            ops.apply_op("Add", DataType.I32, [np.int32(1)])

    def test_unsupported_dtype(self):
        with pytest.raises(ValueError, match="does not support"):
            ops.apply_op("Sqrt", DataType.I32, [np.int32(4)])

    def test_missing_immediate(self):
        with pytest.raises(ValueError, match="requires an immediate"):
            ops.apply_op("Shr", DataType.I32, [np.int32(4)])


class TestIntegerSemantics:
    def test_add_wraps(self):
        a = np.array([2**31 - 1], dtype=np.int32)
        out = ops.apply_op("Add", DataType.I32, [a, np.array([1], dtype=np.int32)])
        assert out[0] == -(2**31)

    def test_mul_wraps(self):
        a = np.array([2**30], dtype=np.int32)
        out = ops.apply_op("Mul", DataType.I32, [a, np.array([4], dtype=np.int32)])
        assert out[0] == 0

    def test_div_truncates_toward_zero(self):
        a = np.array([-7, 7, -7, 7], dtype=np.int32)
        b = np.array([2, 2, -2, -2], dtype=np.int32)
        out = ops.apply_op("Div", DataType.I32, [a, b])
        assert list(out) == [-3, 3, 3, -3]

    def test_div_by_zero_yields_zero(self):
        a = np.array([5], dtype=np.int32)
        b = np.array([0], dtype=np.int32)
        assert ops.apply_op("Div", DataType.I32, [a, b])[0] == 0

    def test_shr_arithmetic_for_signed(self):
        a = np.array([-8], dtype=np.int32)
        assert ops.apply_op("Shr", DataType.I32, [a], imm=1)[0] == -4

    def test_shr_logical_for_unsigned(self):
        a = np.array([2**31], dtype=np.uint32)
        assert ops.apply_op("Shr", DataType.U32, [a], imm=1)[0] == 2**30

    def test_shl_wraps_sign_bit(self):
        a = np.array([2**30], dtype=np.int32)
        out = ops.apply_op("Shl", DataType.I32, [a], imm=1)
        assert out[0] == -(2**31)

    def test_abd_is_max_minus_min(self):
        a = np.array([-100, 100], dtype=np.int8)
        b = np.array([100, -100], dtype=np.int8)
        out = ops.apply_op("Abd", DataType.I8, [a, b])
        # 200 wraps in int8: (max - min) with wraparound
        assert out[0] == out[1]

    def test_bitnot(self):
        a = np.array([0], dtype=np.int16)
        assert ops.apply_op("BitNot", DataType.I16, [a])[0] == -1


class TestFloatSemantics:
    def test_div_by_zero_is_inf(self):
        a = np.array([1.0], dtype=np.float32)
        b = np.array([0.0], dtype=np.float32)
        assert np.isinf(ops.apply_op("Div", DataType.F32, [a, b])[0])

    def test_recp(self):
        a = np.array([4.0], dtype=np.float64)
        assert ops.apply_op("Recp", DataType.F64, [a])[0] == 0.25

    def test_sqrt_negative_is_nan(self):
        a = np.array([-1.0], dtype=np.float32)
        assert np.isnan(ops.apply_op("Sqrt", DataType.F32, [a])[0])

    def test_abd_float(self):
        a = np.array([1.5], dtype=np.float32)
        b = np.array([4.0], dtype=np.float32)
        assert ops.apply_op("Abd", DataType.F32, [a, b])[0] == pytest.approx(2.5)

    def test_cast_float_to_int_truncates(self):
        a = np.array([2.9, -2.9])
        out = ops.apply_op("Cast", DataType.I32, [a])
        assert list(out) == [2, -2]


@st.composite
def int32_pairs(draw):
    ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)
    return draw(ints), draw(ints)


class TestProperties:
    @given(int32_pairs())
    @settings(max_examples=200)
    def test_add_matches_c_wraparound(self, pair):
        a, b = pair
        out = ops.apply_op(
            "Add", DataType.I32,
            [np.array([a], np.int32), np.array([b], np.int32)],
        )[0]
        expected = (a + b + 2**31) % 2**32 - 2**31
        assert int(out) == expected

    @given(int32_pairs())
    @settings(max_examples=200)
    def test_div_matches_python_trunc(self, pair):
        a, b = pair
        out = ops.apply_op(
            "Div", DataType.I32,
            [np.array([a], np.int32), np.array([b], np.int32)],
        )[0]
        if b == 0:
            assert out == 0
        else:
            quotient = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                quotient = -quotient
            # wrap INT_MIN / -1 like the hardware would
            expected = (quotient + 2**31) % 2**32 - 2**31
            assert int(out) == expected

    @given(st.integers(-128, 127), st.integers(-128, 127))
    @settings(max_examples=200)
    def test_min_max_abd_identity(self, a, b):
        arr_a = np.array([a], np.int8)
        arr_b = np.array([b], np.int8)
        lo = ops.apply_op("Min", DataType.I8, [arr_a, arr_b])[0]
        hi = ops.apply_op("Max", DataType.I8, [arr_a, arr_b])[0]
        abd = ops.apply_op("Abd", DataType.I8, [arr_a, arr_b])[0]
        assert int(abd) == int(
            ops.apply_op("Sub", DataType.I8,
                         [np.array([hi], np.int8), np.array([lo], np.int8)])[0]
        )

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 31))
    @settings(max_examples=200)
    def test_shift_right_then_left_loses_low_bits_only(self, a, k):
        arr = np.array([a], np.int32)
        down = ops.apply_op("Shr", DataType.I32, [arr], imm=k)
        up = ops.apply_op("Shl", DataType.I32, [down], imm=k)
        mask = ~((1 << k) - 1)
        expected = (a & mask + 2**32) if False else ((a >> k) << k)
        expected = (expected + 2**31) % 2**32 - 2**31
        assert int(up[0]) == expected
