"""Every example script must run cleanly as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print their findings"
