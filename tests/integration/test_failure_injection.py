"""Failure-injection tests: the system fails loudly, not silently."""

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.dtypes import DataType
from repro.errors import (
    CodegenError,
    IsaError,
    KernelDomainError,
    ModelError,
    VmError,
)
from repro.ir import BufferDecl, BufferKind, KernelCall, Program, SimdOp, const_i
from repro.isa import InstructionSet, load_builtin, parse_instruction_set
from repro.kernels import default_library
from repro.model.builder import ModelBuilder
from repro.vm import Machine, run_program


class TestVmFailures:
    def test_unknown_simd_instruction(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.INPUT))
        program.body = [SimdOp("v", "vquantumq_s32", (), DataType.I32, 4)]
        with pytest.raises(IsaError, match="no instruction"):
            run_program(program, ARM_A72)

    def test_wrong_arg_count_for_instruction(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.INPUT))
        program.body = [SimdOp("v", "vaddq_s32", (), DataType.I32, 4)]
        with pytest.raises(VmError):
            run_program(program, ARM_A72)

    def test_unknown_kernel_id(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.F32, 8, BufferKind.INPUT))
        program.add_buffer(BufferDecl("y", DataType.F32, 16, BufferKind.OUTPUT))
        program.body = [KernelCall("fft.quantum", ("x",), ("y",),
                                   (("n", 8), ("in_shapes", ((8,),)),))]
        from repro.errors import KernelError

        with pytest.raises(KernelError, match="unknown kernel id"):
            run_program(program, ARM_A72)

    def test_kernel_out_of_domain(self):
        # radix2 on a non-power-of-two length must refuse, not mangle
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.F32, 12, BufferKind.INPUT))
        program.add_buffer(BufferDecl("y", DataType.F32, 24, BufferKind.OUTPUT))
        program.body = [KernelCall("fft.radix2", ("x",), ("y",),
                                   (("n", 12), ("in_shapes", ((12,),)),))]
        with pytest.raises(KernelDomainError):
            run_program(program, ARM_A72)

    def test_kernel_output_overflow(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.F32, 8, BufferKind.INPUT))
        program.add_buffer(BufferDecl("y", DataType.F32, 4, BufferKind.OUTPUT))
        program.body = [KernelCall("fft.radix2", ("x",), ("y",),
                                   (("n", 8), ("in_shapes", ((8,),)),))]
        with pytest.raises(VmError, match="holds only"):
            run_program(program, ARM_A72)


class TestCodegenFailures:
    def test_hcg_refuses_unknown_actor_type(self):
        from repro.codegen import HcgGenerator
        from repro.model.actor import Actor
        from repro.model.graph import Model

        model = Model("bad")
        actor = Actor("mystery", "Teleport")
        actor.add_output("out", DataType.I32, (4,))
        model.add_actor(actor)
        with pytest.raises(ModelError, match="unknown actor type"):
            HcgGenerator(ARM_A72).generate(model)

    def test_corrupted_isa_rejected_at_parse(self):
        with pytest.raises(IsaError):
            parse_instruction_set(
                "arch: broken\nvector_bits: 128\n"
                "Ins: bad ; Graph: Add,i32,4,T9,I1,O1 ; Code: O1 = bad(I1)"
            )

    def test_batch_with_empty_isa_for_dtype_falls_back(self):
        """An ISA with no f64 instructions: f64 batch actors translate
        conventionally instead of crashing."""
        neon = load_builtin("neon")
        no_f64 = InstructionSet(
            "neon", 128,
            tuple(i for i in neon.instructions if i.dtype is not DataType.F64),
        )
        b = ModelBuilder("m", default_dtype=DataType.F64)
        x = b.inport("x", shape=8)
        y = b.inport("y", shape=8)
        s = b.add_actor("Add", "s", x, y)
        b.outport("o", s)
        model = b.build()
        from repro.codegen import HcgGenerator
        from repro.ir import walk

        generator = HcgGenerator(ARM_A72, instruction_set=no_f64)
        program = generator.generate(model)
        assert not any(isinstance(s, SimdOp) for s in walk(program.body))
        out = Machine(program, ARM_A72, instruction_set=no_f64).run(
            {"x": np.ones(8), "y": np.ones(8)}
        ).outputs["o"]
        assert list(out) == [2.0] * 8

    def test_singular_matrix_probe_does_not_crash_selection(self):
        """Algorithm 1's test-input generator avoids singular matrices."""
        from repro.codegen.hcg.intensive import IntensiveSynthesizer
        from repro.model.actor_defs import create_actor

        synth = IntensiveSynthesizer(
            default_library(), ARM_A72.cost, ARM_A72.instruction_set
        )
        actor = create_actor("inv", "MatInv", DataType.F64, {"n": 4})
        kernel = synth.select(actor)
        assert kernel.actor_key == "matinv"


class TestModelFailures:
    def test_width_zero_rejected(self):
        b = ModelBuilder("m", default_dtype=DataType.I32)
        with pytest.raises(Exception):
            b.inport("x", shape=0)

    def test_self_loop_rejected(self):
        from repro.model.actor_defs import create_actor
        from repro.model.graph import Model

        model = Model("loop")
        model.add_actor(create_actor("a", "Add", DataType.I32, {"shape": (4,)}))
        model.connect("a", "out", "a", "in1")
        model.connect("a", "out", "a", "in2")
        with pytest.raises(ModelError, match="algebraic loop"):
            model.validate()
