"""The tutorial document's claims, executed.

docs/tutorial.md promises specific behaviours (the peak-detector model
forms one batch group, vmla/vabd/vmin get selected, AVX2 retargeting
uses fmadd at 8 lanes, ...).  This test keeps the document honest.
"""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.bench import compare_generators
from repro.codegen import HcgGenerator
from repro.codegen.hcg import dispatch
from repro.compiler import GCC
from repro.dtypes import DataType
from repro.ir import For, SimdOp, walk
from repro.ir.cemit import emit_c
from repro.model import ModelBuilder, ModelEvaluator
from repro.schedule import compute_schedule
from repro.vm import Machine


def build_peaks_model(n=256):
    b = ModelBuilder("peaks", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    prev = b.add_actor("UnitDelay", "prev", dtype=DataType.F32, shape=n)
    alpha = b.const("alpha", value=[0.85] * n)
    beta = b.const("beta", value=[0.15] * n)
    smooth = b.add_actor("Add", "smooth",
                         b.add_actor("Mul", "m1", alpha, prev),
                         b.add_actor("Mul", "m2", beta, x))
    spike = b.add_actor("Abd", "spike", x, smooth)
    capped = b.add_actor("Min", "capped", spike, b.const("cap", value=[1.0] * n))
    b.outport("y", capped)
    b.connect(smooth, prev, "in1")
    return b.build()


@pytest.fixture(scope="module")
def model():
    return build_peaks_model()


class TestTutorialClaims:
    def test_one_batch_group_of_five(self, model):
        result = dispatch(model, compute_schedule(model), ARM_A72.instruction_set)
        (group,) = result.groups
        assert set(group.members) == {"m1", "m2", "smooth", "spike", "capped"}
        assert group.width == 256 and group.bit_width == 32

    def test_selected_instructions(self, model):
        generator = HcgGenerator(ARM_A72)
        program = generator.generate(model)
        names = {s.instruction for s in walk(program.body) if isinstance(s, SimdOp)}
        assert "vmlaq_f32" in names
        assert "vabdq_f32" in names
        assert "vminq_f32" in names

    def test_smooth_stored_once_others_in_registers(self, model):
        from repro.ir import SimdStore

        program = HcgGenerator(ARM_A72).generate(model)
        stores = [s for s in walk(program.body) if isinstance(s, SimdStore)]
        # smooth (delay feedback) + capped (outport, stored directly)
        assert len(stores) == 2

    def test_multi_step_verification(self, model):
        program = HcgGenerator(ARM_A72).generate(model)
        machine = Machine(program, ARM_A72)
        reference = ModelEvaluator(model)
        inputs = {"x": np.random.default_rng(0).normal(size=256).astype(np.float32)}
        for _ in range(3):
            want = reference.step(inputs)["y"]
            got = machine.run(inputs).outputs["y"]
            assert np.allclose(got, want, rtol=1e-5)

    def test_baseline_comparison_runs(self, model):
        results = compare_generators(model, ARM_A72, GCC)
        assert results["hcg"].cycles_per_step < results["simulink_coder"].cycles_per_step

    def test_avx2_retarget(self, model):
        program = HcgGenerator(INTEL_I7_8700).generate(model)
        source = emit_c(program, INTEL_I7_8700.instruction_set)
        assert "_mm256_fmadd_ps" in source
        assert "_mm256_min_ps" in source
        loops = [s for s in walk(program.body) if isinstance(s, For)]
        assert loops[0].step == 8

    def test_tracer_counters_and_group_spans(self, model):
        # tutorial §8: attach a tracer, read counters and alg2 spans
        from repro.observability import Tracer

        tracer = Tracer()
        HcgGenerator(ARM_A72, tracer=tracer).generate(model)
        assert tracer.counters["alg2.groups_vectorized"] == 1
        spans = tracer.find("alg2.group")
        assert spans and all(
            "instructions_matched" in s.attrs for s in spans
        )
