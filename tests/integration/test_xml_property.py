"""Property: any buildable model round-trips through the XML format."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.model.xml_io import model_from_string, model_to_string

UNARY = {"Abs": {}, "Neg": {}}
BINARY = {"Add": {}, "Sub": {}, "Mul": {}, "Min": {}, "Max": {}}


@st.composite
def random_model_case(draw):
    dtype = draw(st.sampled_from([DataType.I32, DataType.F32, DataType.I16,
                                  DataType.F64, DataType.U8]))
    width = draw(st.integers(1, 24))
    b = ModelBuilder("prop_xml", default_dtype=dtype)
    values = [b.inport("x0", shape=width)]
    use_const = draw(st.booleans())
    if use_const:
        const_values = draw(
            st.lists(st.integers(0, 50), min_size=width, max_size=width)
        )
        values.append(b.const("c0", value=const_values))
    for index in range(draw(st.integers(1, 5))):
        if draw(st.booleans()):
            op = draw(st.sampled_from(sorted(UNARY)))
            values.append(b.add_actor(op, f"n{index}", draw(st.sampled_from(values))))
        elif dtype.is_integer and draw(st.booleans()):
            values.append(
                b.add_actor("Shr", f"n{index}", draw(st.sampled_from(values)),
                            shift=draw(st.integers(0, 3)))
            )
        else:
            op = draw(st.sampled_from(sorted(BINARY)))
            values.append(
                b.add_actor(op, f"n{index}", draw(st.sampled_from(values)),
                            draw(st.sampled_from(values)))
            )
    if draw(st.booleans()):
        delayed = b.add_actor("UnitDelay", "d0", values[-1],
                              initial=draw(st.integers(0, 5)))
        b.outport("y_delay", delayed)
    b.outport("y", values[-1])
    model = b.build()
    seed = draw(st.integers(0, 2**31 - 1))
    return model, seed


class TestXmlRoundTripProperty:
    @given(random_model_case())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_structure_and_semantics_survive(self, case):
        model, seed = case
        restored = model_from_string(model_to_string(model))
        assert [a.name for a in restored.actors] == [a.name for a in model.actors]
        assert len(restored.connections) == len(model.connections)

        rng = np.random.default_rng(seed)
        port = model.inports[0].output("out")
        if port.dtype.is_float:
            data = rng.uniform(-5, 5, size=port.shape).astype(port.dtype.numpy_dtype)
        else:
            data = rng.integers(0, 60, size=port.shape).astype(port.dtype.numpy_dtype)
        inputs = {"x0": data}
        original = ModelEvaluator(model)
        copy = ModelEvaluator(restored)
        for _ in range(2):  # delays must round-trip too
            want = original.step(inputs)
            got = copy.step(inputs)
            for key, value in want.items():
                assert np.array_equal(got[key], value), key

    @given(random_model_case())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_double_round_trip_is_identical_text(self, case):
        model, _ = case
        once = model_to_string(model)
        twice = model_to_string(model_from_string(once))
        assert once == twice
