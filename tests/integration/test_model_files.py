"""The shipped models/ directory loads and matches the programmatic suite."""

from pathlib import Path

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.bench.models import BENCHMARK_MODELS, benchmark_inputs
from repro.codegen import HcgGenerator
from repro.model.semantics import ModelEvaluator
from repro.model.xml_io import read_model
from repro.vm import Machine

MODELS_DIR = Path(__file__).parents[2] / "models"


@pytest.mark.parametrize("name", sorted(BENCHMARK_MODELS))
def test_shipped_model_file_matches_programmatic(name):
    from_file = read_model(MODELS_DIR / f"{name.lower()}.xml")
    programmatic = BENCHMARK_MODELS[name]()
    assert from_file.name == programmatic.name
    assert len(from_file.actors) == len(programmatic.actors)
    inputs = benchmark_inputs(programmatic)
    want = ModelEvaluator(programmatic).step(inputs)
    got = ModelEvaluator(from_file).step(inputs)
    for key, value in want.items():
        assert np.allclose(got[key], value, rtol=1e-5, atol=1e-6, equal_nan=True), key


def test_file_model_generates_identically():
    from_file = read_model(MODELS_DIR / "fir.xml")
    programmatic = BENCHMARK_MODELS["FIR"]()
    inputs = benchmark_inputs(programmatic)
    a = Machine(HcgGenerator(ARM_A72).generate(from_file), ARM_A72).run(inputs)
    b = Machine(HcgGenerator(ARM_A72).generate(programmatic), ARM_A72).run(inputs)
    assert np.array_equal(a.outputs["y"], b.outputs["y"])
    assert a.cycles == b.cycles
