"""Property-based cross-generator consistency.

The paper's key correctness statement is that all tools produce
consistent results; here hypothesis builds random batch-actor models
and checks Simulink-Coder-like, DFSynth-like and HCG code — compiled
with both toolchains, on ARM and Intel — against the reference model
semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, HealthCheck
from hypothesis import strategies as st

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.bench.runner import compare_generators
from repro.compiler import CLANG, GCC
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder

UNARY_INT = ["Abs", "Neg", "BitNot"]
BINARY_INT = ["Add", "Sub", "Mul", "Min", "Max", "Abd", "BitAnd", "BitOr", "BitXor"]
UNARY_FLOAT = ["Abs", "Neg", "Sqrt"]
BINARY_FLOAT = ["Add", "Sub", "Mul", "Min", "Max", "Abd"]


@st.composite
def random_batch_model(draw):
    dtype = draw(st.sampled_from([DataType.I32, DataType.F32, DataType.I16]))
    width = draw(st.sampled_from([1, 2, 3, 4, 5, 7, 8, 12, 16, 33]))
    n_ops = draw(st.integers(min_value=1, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))

    b = ModelBuilder("prop", default_dtype=dtype)
    values = [b.inport(f"x{i}", shape=width) for i in range(2)]
    unary = UNARY_FLOAT if dtype.is_float else UNARY_INT
    binary = BINARY_FLOAT if dtype.is_float else BINARY_INT
    for index in range(n_ops):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            op = draw(st.sampled_from(unary))
            ref = b.add_actor(op, f"n{index}", draw(st.sampled_from(values)))
        elif kind == 1 and dtype.is_integer:
            op = draw(st.sampled_from(["Shr", "Shl"]))
            ref = b.add_actor(op, f"n{index}", draw(st.sampled_from(values)),
                              shift=draw(st.integers(0, 3)))
        else:
            op = draw(st.sampled_from(binary))
            ref = b.add_actor(op, f"n{index}", draw(st.sampled_from(values)),
                              draw(st.sampled_from(values)))
        values.append(ref)
    b.outport("out_last", values[-1])
    b.outport("out_mid", values[len(values) // 2])
    model = b.build()

    rng = np.random.default_rng(seed)
    inputs = {}
    for inport in model.inports:
        port = inport.output("out")
        if dtype.is_float:
            inputs[inport.name] = rng.uniform(0.25, 4.0, size=port.shape).astype(
                port.dtype.numpy_dtype)
        else:
            inputs[inport.name] = rng.integers(1, 60, size=port.shape).astype(
                port.dtype.numpy_dtype)
    return model, inputs


class TestCrossGeneratorConsistency:
    @given(random_batch_model())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arm_gcc(self, case):
        model, inputs = case
        compare_generators(model, ARM_A72, GCC, inputs=inputs, iterations=1)

    @given(random_batch_model())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_intel_clang(self, case):
        model, inputs = case
        compare_generators(model, INTEL_I7_8700, CLANG, inputs=inputs, iterations=1)

    @given(random_batch_model())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_intel_gcc_scattered(self, case):
        model, inputs = case
        compare_generators(model, INTEL_I7_8700, GCC, inputs=inputs, iterations=1)


class TestHcgInvariants:
    @given(random_batch_model())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_batch_node_mapped_once(self, case):
        from repro.codegen import HcgGenerator

        model, _ = case
        generator = HcgGenerator(ARM_A72)
        generator.generate(model)
        mapped = [
            member
            for match in generator.last_batch.matches
            for member in match.subgraph.members
        ]
        assert len(mapped) == len(set(mapped))  # a partition, not a cover

    @given(random_batch_model())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_emitted_subgraphs_convex_and_independent(self, case):
        from repro.codegen import HcgGenerator
        from repro.codegen.hcg.dfg import build_dfg
        from repro.codegen.hcg.subgraphs import is_convex

        model, _ = case
        generator = HcgGenerator(ARM_A72)
        generator.generate(model)
        for match in generator.last_batch.matches:
            assert match.subgraph.sink is not None
