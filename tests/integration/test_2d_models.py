"""End-to-end tests for models with 2-D intensive actors (Table 1a)."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.codegen import DfsynthGenerator, HcgGenerator, SimulinkCoderGenerator
from repro.dtypes import DataType
from repro.model import ModelBuilder, ModelEvaluator
from repro.vm import Machine


def _pipeline(size=16):
    b = ModelBuilder("img", default_dtype=DataType.F32)
    image = b.inport("image", shape=(size, size))
    rng = np.random.default_rng(4)
    taps = b.const("taps", value=rng.normal(scale=0.2, size=(3, 3)).tolist())
    blur = b.add_actor("Conv2D", "blur", image, taps,
                       rows=size, cols=size, krows=3, kcols=3)
    b.outport("blurred", blur)
    dct = b.add_actor("DCT2D", "dct", image, rows=size, cols=size)
    b.outport("coeffs", dct)
    fft = b.add_actor("FFT2D", "fft", image, rows=size, cols=size)
    b.outport("spectrum", fft)
    mat = b.inport("mat", shape=(3, 3))
    inv = b.add_actor("MatInv", "inv", mat, n=3)
    b.outport("inverse", inv)
    det = b.add_actor("MatDet", "det", mat, n=3)
    b.outport("determinant", det)
    mm = b.add_actor("MatMul", "mm", mat, mat, n=3)
    b.outport("product", mm)
    return b.build()


def _inputs(size=16):
    rng = np.random.default_rng(5)
    return {
        "image": rng.uniform(-1, 1, (size, size)).astype(np.float32),
        "mat": (rng.normal(size=(3, 3)) + 3 * np.eye(3)).astype(np.float32),
    }


class Test2dPipeline:
    @pytest.mark.parametrize("generator_cls", [
        SimulinkCoderGenerator, DfsynthGenerator, HcgGenerator,
    ])
    def test_all_generators_correct(self, generator_cls):
        model = _pipeline()
        inputs = _inputs()
        reference = ModelEvaluator(model).step(inputs)
        program = generator_cls(ARM_A72).generate(model)
        result = Machine(program, ARM_A72).run(inputs)
        for key, want in reference.items():
            got = result.outputs[key].reshape(want.shape)
            assert np.allclose(got, want, rtol=1e-3, atol=1e-3), (generator_cls.__name__, key)

    def test_hcg_selects_2d_specialists(self):
        model = _pipeline()
        generator = HcgGenerator(ARM_A72)
        generator.generate(model)
        chosen = {r.key.actor_key: r.chosen for r in generator.last_intensive.records}
        assert chosen["conv2d"] == "conv2d.direct_simd"
        assert "lee" in chosen["dct2d"]          # 16 is a power of two
        assert "radix2" in chosen["fft2d"]
        assert "cofactor" in chosen["matinv"]

    def test_hcg_beats_baseline(self):
        model = _pipeline()
        inputs = _inputs()
        cycles = {}
        for generator in (SimulinkCoderGenerator(ARM_A72), HcgGenerator(ARM_A72)):
            program = generator.generate(model)
            cycles[generator.name] = Machine(program, ARM_A72).run(inputs).cycles
        assert cycles["hcg"] < cycles["simulink_coder"]

    def test_non_pow2_dims_fall_back_to_mixed(self):
        b = ModelBuilder("odd", default_dtype=DataType.F64)
        image = b.inport("image", shape=(6, 10))
        fft = b.add_actor("FFT2D", "fft", image, rows=6, cols=10)
        b.outport("spectrum", fft)
        model = b.build()
        generator = HcgGenerator(INTEL_I7_8700)
        program = generator.generate(model)
        record = generator.last_intensive.records[-1]
        assert "mixed" in record.chosen
        rng = np.random.default_rng(6)
        inputs = {"image": rng.normal(size=(6, 10))}
        want = ModelEvaluator(model).step(inputs)["spectrum"]
        got = Machine(program, INTEL_I7_8700).run(inputs).outputs["spectrum"]
        assert np.allclose(got.reshape(want.shape), want, atol=1e-8)

    def test_ifft2d_round_trip_through_codegen(self):
        size = 8
        b = ModelBuilder("rt", default_dtype=DataType.F64)
        image = b.inport("image", shape=(size, size))
        fwd = b.add_actor("FFT2D", "fwd", image, rows=size, cols=size)
        back = b.add_actor("IFFT2D", "back", fwd, rows=size, cols=size)
        b.outport("restored", back)
        model = b.build()
        program = HcgGenerator(ARM_A72).generate(model)
        rng = np.random.default_rng(7)
        data = rng.normal(size=(size, size))
        got = Machine(program, ARM_A72).run({"image": data}).outputs["restored"]
        assert np.allclose(got.reshape(2, size, size)[0], data, atol=1e-8)
