"""Compile the emitted C with a real compiler and run it.

The strongest validation this environment allows: the generated C —
including emitted kernel-library bodies and (on x86) real AVX2/SSE
intrinsics — is compiled with the host GCC and executed; its stdout is
compared element-by-element with the VM running the *same* program.
Skips cleanly when no compiler (or no AVX2 CPU) is present.
"""

import shutil
import subprocess
from pathlib import Path

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700, INTEL_I7_8700_SSE4
from repro.bench.models import (
    benchmark_inputs,
    conv_model,
    fir_model,
    highpass_model,
    lowpass_model,
)
from repro.codegen import DfsynthGenerator, HcgGenerator, SimulinkCoderGenerator
from repro.ir.cemit import emit_c, emit_test_harness
from repro.vm import Machine

GCC = shutil.which("gcc")

pytestmark = pytest.mark.skipif(GCC is None, reason="no host C compiler")


def _cpu_supports(flag: str) -> bool:
    try:
        cpuinfo = Path("/proc/cpuinfo").read_text()
    except OSError:
        return False
    return flag in cpuinfo


def _compile_and_run(source: str, tmp_path: Path, extra_flags=()):
    c_file = tmp_path / "unit.c"
    c_file.write_text(source)
    binary = tmp_path / "unit"
    compile_cmd = [GCC, "-O1", "-std=c99", str(c_file), "-o", str(binary), "-lm",
                   *extra_flags]
    completed = subprocess.run(compile_cmd, capture_output=True, text=True)
    assert completed.returncode == 0, completed.stderr[-2000:]
    run = subprocess.run([str(binary)], capture_output=True, text=True, timeout=60)
    assert run.returncode == 0, run.stderr[-2000:]
    outputs = {}
    for line in run.stdout.splitlines():
        name, index, value = line.split()
        outputs.setdefault(name, {})[int(index)] = float(value)
    return {
        name: np.array([cells[i] for i in range(len(cells))])
        for name, cells in outputs.items()
    }


def _check(model, generator, arch, tmp_path, extra_flags=(), rtol=1e-5):
    inputs = benchmark_inputs(model)
    program = generator.generate(model)
    source = emit_c(program, arch.instruction_set) + "\n" + emit_test_harness(program, inputs)
    native = _compile_and_run(source, tmp_path, extra_flags)
    vm = Machine(program, arch).run(inputs)
    for name, value in vm.outputs.items():
        got = native[name]
        want = np.asarray(value, dtype=np.float64).ravel()
        assert np.allclose(got, want, rtol=rtol, atol=1e-4), name


class TestScalarPrograms:
    """Scalar generated code is portable C99: run it natively."""

    @pytest.mark.parametrize("factory,kwargs", [
        (fir_model, {"n": 37}),
        (highpass_model, {"n": 33}),
        (lowpass_model, {"n": 40}),
        (conv_model, {"n": 32, "m": 8}),
    ])
    def test_simulink_baseline_matches_vm(self, factory, kwargs, tmp_path):
        model = factory(**kwargs)
        _check(model, SimulinkCoderGenerator(ARM_A72), ARM_A72, tmp_path)

    @pytest.mark.parametrize("factory,kwargs", [
        (fir_model, {"n": 37}),
        (highpass_model, {"n": 33}),
        (conv_model, {"n": 32, "m": 8}),
    ])
    def test_dfsynth_baseline_matches_vm(self, factory, kwargs, tmp_path):
        model = factory(**kwargs)
        _check(model, DfsynthGenerator(ARM_A72), ARM_A72, tmp_path)


@pytest.mark.skipif(not _cpu_supports("avx2"), reason="host CPU lacks AVX2")
class TestAvx2Programs:
    """HCG's AVX2 intrinsics execute natively on this x86 host."""

    @pytest.mark.parametrize("factory,kwargs", [
        (fir_model, {"n": 67}),            # i32: vpmulld/vpaddd + remainder
        (highpass_model, {"n": 64}),       # f32: vfmadd + branches
        (lowpass_model, {"n": 61}),        # f32: min/max clamps + remainder
    ])
    def test_hcg_avx2_matches_vm(self, factory, kwargs, tmp_path):
        model = factory(**kwargs)
        _check(
            model, HcgGenerator(INTEL_I7_8700), INTEL_I7_8700, tmp_path,
            extra_flags=("-mavx2", "-mfma"),
        )

    def test_scattered_simulink_avx2_matches_vm(self, tmp_path):
        model = highpass_model(64)
        _check(
            model, SimulinkCoderGenerator(INTEL_I7_8700), INTEL_I7_8700, tmp_path,
            extra_flags=("-mavx2", "-mfma"),
        )

    def test_branch_aware_hcg_avx2(self, tmp_path):
        model = highpass_model(64)
        _check(
            model, HcgGenerator(INTEL_I7_8700, branch_aware=True), INTEL_I7_8700,
            tmp_path, extra_flags=("-mavx2", "-mfma"),
        )


@pytest.mark.skipif(not _cpu_supports("sse4_1"), reason="host CPU lacks SSE4.1")
class TestSse4Programs:
    def test_hcg_sse4_matches_vm(self, tmp_path):
        model = fir_model(40)
        _check(
            model, HcgGenerator(INTEL_I7_8700_SSE4), INTEL_I7_8700_SSE4, tmp_path,
            extra_flags=("-msse4.1",),
        )


class TestScalarOpCoverageNative:
    """One model per elementwise op, compiled and run natively, so every
    C rendering in the emitter is executed by a real compiler."""

    @pytest.mark.parametrize("op,dtype,params", [
        ("Add", "i32", {}), ("Sub", "i32", {}), ("Mul", "i32", {}),
        ("Div", "i32", {}), ("Min", "i32", {}), ("Max", "i32", {}),
        ("Abs", "i32", {}), ("Abd", "i32", {}), ("Neg", "i32", {}),
        ("BitAnd", "i32", {}), ("BitOr", "i32", {}), ("BitXor", "i32", {}),
        ("BitNot", "i32", {}), ("Shr", "i32", {"shift": 2}),
        ("Shl", "i32", {"shift": 1}),
        ("Add", "f32", {}), ("Div", "f32", {}), ("Min", "f32", {}),
        ("Max", "f32", {}), ("Abs", "f32", {}), ("Abd", "f32", {}),
        ("Recp", "f32", {}), ("Sqrt", "f32", {}),
        ("Add", "f64", {}), ("Sqrt", "f64", {}),
        ("Add", "u8", {}), ("Shr", "u8", {"shift": 1}),
        ("Abd", "i16", {}),
    ])
    def test_scalar_op_native(self, op, dtype, params, tmp_path, rng):
        from repro import ops as op_table
        from repro.dtypes import DataType
        from repro.model.builder import ModelBuilder

        data_type = DataType.from_name(dtype)
        info = op_table.op_info(op)
        b = ModelBuilder(f"op_{op}_{dtype}", default_dtype=data_type)
        sources = [b.inport(f"x{i}", shape=12) for i in range(info.arity)]
        node = b.add_actor(op, "node", *sources, **params)
        b.outport("y", node)
        model = b.build()

        inputs = {}
        for inport in model.inports:
            if data_type.is_float:
                inputs[inport.name] = rng.uniform(0.5, 4.0, 12).astype(
                    data_type.numpy_dtype)
            else:
                lo = 1 if not data_type.is_signed else -40
                inputs[inport.name] = rng.integers(lo, 40, 12).astype(
                    data_type.numpy_dtype)

        program = DfsynthGenerator(ARM_A72).generate(model)
        source = emit_c(program) + "\n" + emit_test_harness(program, inputs)
        native = _compile_and_run(source, tmp_path)
        vm = Machine(program, ARM_A72).run(inputs)
        assert np.allclose(
            native["y"], np.asarray(vm.outputs["y"], dtype=np.float64),
            rtol=1e-6, atol=1e-6,
        ), op


class TestCastAndSwitchNative:
    def test_cast_chain_native(self, tmp_path, rng):
        from repro.dtypes import DataType
        from repro.model.builder import ModelBuilder

        b = ModelBuilder("castnat", default_dtype=DataType.I32)
        x = b.inport("x", shape=10)
        cast = b.add_actor("Cast", "cast", x, dtype=DataType.F32, from_dtype="i32")
        root = b.add_actor("Sqrt", "root", cast)
        back = b.add_actor("Cast", "back", root, dtype=DataType.I32, from_dtype="f32")
        b.outport("y", back)
        model = b.build()
        inputs = {"x": rng.integers(1, 100, 10).astype(np.int32)}
        program = SimulinkCoderGenerator(ARM_A72).generate(model)
        source = emit_c(program) + "\n" + emit_test_harness(program, inputs)
        native = _compile_and_run(source, tmp_path)
        vm = Machine(program, ARM_A72).run(inputs)
        assert np.array_equal(native["y"].astype(np.int64),
                              np.asarray(vm.outputs["y"], dtype=np.int64))

    def test_switch_select_native(self, tmp_path, rng):
        from repro.dtypes import DataType
        from repro.model.builder import ModelBuilder

        for ctrl in (1.0, -1.0):
            b = ModelBuilder("swnat", default_dtype=DataType.F32)
            x = b.inport("x", shape=9)
            c = b.inport("c")
            neg = b.add_actor("Neg", "neg", x)
            sw = b.add_actor("Switch", "sw", neg, dtype=DataType.F32, shape=9,
                             threshold=0.0)
            b.connect(c, sw, "ctrl")
            b.connect(x, sw, "in2")
            b.outport("y", sw)
            model = b.build()
            inputs = {"x": rng.uniform(-3, 3, 9).astype(np.float32),
                      "c": np.float32(ctrl)}
            program = SimulinkCoderGenerator(ARM_A72).generate(model)
            source = emit_c(program) + "\n" + emit_test_harness(program, inputs)
            native = _compile_and_run(source, tmp_path)
            vm = Machine(program, ARM_A72).run(inputs)
            assert np.allclose(native["y"], vm.outputs["y"], rtol=1e-6)
