"""Tests for the profiling reports."""

import pytest

from repro.arch import ARM_A72
from repro.bench.models import benchmark_inputs, fir_model
from repro.codegen import DfsynthGenerator, HcgGenerator
from repro.vm import Machine, compare_report, event_histogram, profile_report


@pytest.fixture(scope="module")
def runs():
    model = fir_model(64)
    inputs = benchmark_inputs(model)
    results = {}
    for generator in (DfsynthGenerator(ARM_A72), HcgGenerator(ARM_A72)):
        program = generator.generate(model)
        results[generator.name] = Machine(program, ARM_A72).run(inputs)
    return results


class TestProfileReport:
    def test_contains_total_and_categories(self, runs):
        text = profile_report(runs["hcg"], ARM_A72)
        assert "total modelled cycles" in text
        assert "SIMD loads/stores" in text
        assert "us/step" in text

    def test_percentages_sum_close_to_100(self, runs):
        text = profile_report(runs["hcg"])
        shares = [
            float(part.split("%")[0].split()[-1])
            for part in text.splitlines()
            if "%" in part
        ]
        assert 99.0 <= sum(shares) <= 101.0

    def test_top_events_listed(self, runs):
        text = profile_report(runs["hcg"])
        assert "vop:vmlaq_s32" in text

    def test_zero_categories_omitted(self, runs):
        text = profile_report(runs["hcg"])
        assert "library kernels" not in text  # FIR has no kernel calls


class TestCompareReport:
    def test_side_by_side(self, runs):
        text = compare_report(runs)
        assert "dfsynth" in text and "hcg" in text
        assert "TOTAL" in text

    def test_hcg_total_lower(self, runs):
        assert runs["hcg"].cycles < runs["dfsynth"].cycles


class TestEventHistogram:
    def test_filtering(self, runs):
        vector_ops = event_histogram(runs["hcg"], prefix="vop:")
        assert set(vector_ops) == {"vop:vmlaq_s32"}
        assert vector_ops["vop:vmlaq_s32"] == 64 // 4

    def test_unfiltered_has_everything(self, runs):
        events = event_histogram(runs["hcg"])
        assert any(e.startswith("vload") for e in events)
