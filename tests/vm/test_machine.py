"""Tests for the virtual machine: execution and cost accounting."""

import numpy as np
import pytest

from repro.arch import ARM_A72, get_architecture
from repro.dtypes import DataType
from repro.errors import VmError, VmTypeError
from repro.ir import (
    AssignVar,
    BufferDecl,
    BufferKind,
    Cmp,
    Comment,
    Const,
    CopyBuffer,
    For,
    If,
    KernelCall,
    Load,
    Program,
    ScalarOp,
    Select,
    SimdBroadcast,
    SimdLoad,
    SimdOp,
    SimdStore,
    Store,
    Var,
    const_i,
)
from repro.vm import Machine, run_program


def _program(buffers, body):
    program = Program("t")
    for decl in buffers:
        program.add_buffer(decl)
    program.body = list(body)
    return program


def _io(length=4, dtype=DataType.I32):
    return [
        BufferDecl("x", dtype, length, BufferKind.INPUT),
        BufferDecl("y", dtype, length, BufferKind.OUTPUT),
    ]


class TestScalarExecution:
    def test_store_load_roundtrip(self):
        program = _program(_io(), [
            Store("y", const_i(0), Load("x", const_i(0))),
        ])
        out = run_program(program, ARM_A72, {"x": [7, 0, 0, 0]})
        assert out.outputs["y"][0] == 7

    def test_scalar_op_and_assign(self):
        program = _program(_io(), [
            AssignVar("t", ScalarOp("Mul", (Load("x", const_i(0)), Const(3, DataType.I32)),
                                    DataType.I32), DataType.I32),
            Store("y", const_i(0), Var("t")),
        ])
        out = run_program(program, ARM_A72, {"x": [5, 0, 0, 0]})
        assert out.outputs["y"][0] == 15

    def test_for_loop(self):
        program = _program(_io(), [
            For("i", const_i(0), const_i(4), 1,
                (Store("y", Var("i"),
                       ScalarOp("Add", (Load("x", Var("i")), Const(1, DataType.I32)),
                                DataType.I32)),)),
        ])
        out = run_program(program, ARM_A72, {"x": [1, 2, 3, 4]})
        assert list(out.outputs["y"]) == [2, 3, 4, 5]

    def test_if_branches(self):
        program = _program(_io(), [
            If(Cmp(">=", Load("x", const_i(0)), Const(0, DataType.I32)),
               (Store("y", const_i(0), Const(1, DataType.I32)),),
               (Store("y", const_i(0), Const(-1, DataType.I32)),)),
        ])
        assert run_program(program, ARM_A72, {"x": [5, 0, 0, 0]}).outputs["y"][0] == 1
        assert run_program(program, ARM_A72, {"x": [-5, 0, 0, 0]}).outputs["y"][0] == -1

    def test_select_lazy(self):
        program = _program(_io(), [
            Store("y", const_i(0),
                  Select(Cmp(">", Load("x", const_i(0)), Const(0, DataType.I32)),
                         Const(10, DataType.I32), Const(20, DataType.I32))),
        ])
        assert run_program(program, ARM_A72, {"x": [1, 0, 0, 0]}).outputs["y"][0] == 10

    def test_copy_buffer(self):
        program = _program(_io(), [
            CopyBuffer("y", const_i(0), "x", const_i(0), 4),
        ])
        out = run_program(program, ARM_A72, {"x": [9, 8, 7, 6]})
        assert list(out.outputs["y"]) == [9, 8, 7, 6]

    def test_comment_free(self):
        program = _program(_io(), [Comment("hello")])
        assert run_program(program, ARM_A72).cycles == 0


class TestSimdExecution:
    def test_load_op_store(self):
        program = _program(_io(), [
            SimdLoad("va", "x", const_i(0), DataType.I32, 4),
            SimdOp("vb", "vaddq_s32", ("va", "va"), DataType.I32, 4),
            SimdStore("y", const_i(0), "vb", DataType.I32, 4),
        ])
        out = run_program(program, ARM_A72, {"x": [1, 2, 3, 4]})
        assert list(out.outputs["y"]) == [2, 4, 6, 8]

    def test_broadcast(self):
        program = _program(_io(), [
            SimdBroadcast("va", Const(7, DataType.I32), DataType.I32, 4),
            SimdStore("y", const_i(0), "va", DataType.I32, 4),
        ])
        assert list(run_program(program, ARM_A72).outputs["y"]) == [7] * 4

    def test_imm_instruction(self):
        program = _program(_io(), [
            SimdLoad("va", "x", const_i(0), DataType.I32, 4),
            SimdOp("vb", "vshrq_n_s32", ("va",), DataType.I32, 4, imm=1),
            SimdStore("y", const_i(0), "vb", DataType.I32, 4),
        ])
        out = run_program(program, ARM_A72, {"x": [4, 8, 12, 16]})
        assert list(out.outputs["y"]) == [2, 4, 6, 8]

    def test_reload_stall_charged(self):
        body = [
            SimdLoad("va", "x", const_i(0), DataType.I32, 4),
            SimdStore("y", const_i(0), "va", DataType.I32, 4),
            SimdLoad("vb", "y", const_i(0), DataType.I32, 4),
            SimdStore("y", const_i(0), "vb", DataType.I32, 4),
        ]
        program = _program(_io(), body)
        result = run_program(program, ARM_A72)
        assert result.cost.counts.get("vload_stall", 0) == 1


class TestKernelCall:
    def test_fft_kernel_executes(self):
        buffers = [
            BufferDecl("x", DataType.F64, 8, BufferKind.INPUT),
            BufferDecl("y", DataType.F64, 16, BufferKind.OUTPUT, shape=(2, 8)),
        ]
        call = KernelCall(
            kernel_id="fft.radix2", inputs=("x",), outputs=("y",),
            params=(("n", 8), ("in_shapes", ((8,),)), ("out_shapes", ((2, 8),))),
        )
        program = _program(buffers, [call])
        x = np.arange(8.0)
        out = run_program(program, ARM_A72, {"x": x})
        spectrum = out.outputs["y"]
        ref = np.fft.fft(x)
        assert np.allclose(spectrum[0] + 1j * spectrum[1], ref)
        assert out.cost.kernel > 0


class TestErrors:
    def test_unknown_input_buffer(self):
        program = _program(_io(), [])
        with pytest.raises(VmError, match="unknown input"):
            Machine(program, ARM_A72).run({"zz": [1]})

    def test_wrong_input_size(self):
        program = _program(_io(), [])
        with pytest.raises(VmTypeError, match="expected 4 elements"):
            Machine(program, ARM_A72).run({"x": [1, 2]})

    def test_load_out_of_bounds(self):
        program = _program(_io(), [Store("y", const_i(0), Load("x", const_i(9)))])
        with pytest.raises(VmError, match="out of bounds"):
            run_program(program, ARM_A72)

    def test_simd_load_out_of_bounds(self):
        program = _program(_io(), [SimdLoad("v", "x", const_i(2), DataType.I32, 4)])
        with pytest.raises(VmError, match="SIMD load out of bounds"):
            run_program(program, ARM_A72)

    def test_undefined_scalar(self):
        program = _program(_io(), [Store("y", const_i(0), Var("ghost"))])
        with pytest.raises(VmError, match="undefined scalar"):
            run_program(program, ARM_A72)

    def test_undefined_vector(self):
        program = _program(_io(), [SimdStore("y", const_i(0), "ghost", DataType.I32, 4)])
        with pytest.raises(VmError, match="undefined vector"):
            run_program(program, ARM_A72)

    def test_missing_buffer(self):
        program = _program(_io(), [Store("ghost", const_i(0), Const(1, DataType.I32))])
        with pytest.raises(VmError, match="no buffer"):
            run_program(program, ARM_A72)


class TestCostAccounting:
    def test_loop_overhead_counted_per_iteration(self):
        program = _program(_io(), [
            For("i", const_i(0), const_i(4), 1, ()),
        ])
        result = run_program(program, ARM_A72)
        assert result.cost.counts["loop_iter"] == 4
        assert result.cost.loop == pytest.approx(4 * ARM_A72.cost.loop_overhead)

    def test_op_events_tracked(self):
        program = _program(_io(), [
            Store("y", const_i(0),
                  ScalarOp("Div", (Load("x", const_i(0)), Const(2, DataType.I32)),
                           DataType.I32)),
        ])
        result = run_program(program, ARM_A72)
        assert result.cost.counts["op:Div"] == 1
        assert result.cost.scalar_ops >= ARM_A72.cost.scalar_op("Div")

    def test_state_persists_across_runs(self):
        buffers = _io() + [BufferDecl("s", DataType.I32, 1, BufferKind.STATE, init=(5.0,))]
        program = _program(buffers, [
            Store("y", const_i(0), Load("s", const_i(0))),
            Store("s", const_i(0),
                  ScalarOp("Add", (Load("s", const_i(0)), Const(1, DataType.I32)),
                           DataType.I32)),
        ])
        machine = Machine(program, ARM_A72)
        assert machine.run().outputs["y"][0] == 5
        assert machine.run().outputs["y"][0] == 6

    def test_throughput_factor_applied(self):
        import dataclasses

        cost = dataclasses.replace(ARM_A72.cost, throughput_factor=0.5)
        program = _program(_io(), [Store("y", const_i(0), Const(1, DataType.I32))])
        half = Machine(program, ARM_A72, cost=cost).run()
        full = Machine(program, ARM_A72).run()
        assert half.cycles == pytest.approx(full.cycles * 0.5)


RVV = get_architecture("riscv_u74")


class TestMaskedSimd:
    """Statements with ``vl`` set touch only the leading active lanes."""

    def _masked_program(self, vl):
        return _program(_io(8), [
            SimdLoad("va", "x", const_i(0), DataType.I32, 8, vl=vl),
            SimdOp("vb", "vadd_vv_i32", ("va", "va"), DataType.I32, 8, vl=vl),
            SimdStore("y", const_i(0), "vb", DataType.I32, 8, vl=vl),
        ])

    def test_masked_store_writes_only_active_lanes(self):
        out = run_program(self._masked_program(3), RVV,
                          {"x": [1, 2, 3, 4, 5, 6, 7, 8]})
        assert list(out.outputs["y"]) == [2, 4, 6, 0, 0, 0, 0, 0]

    @pytest.mark.parametrize("vl", [0, 9, -1])
    def test_vl_out_of_range(self, vl):
        with pytest.raises(VmError, match="out of range"):
            run_program(self._masked_program(vl), RVV)

    def test_masked_access_trims_bounds_check(self):
        # a full-width load at index 5 would run off the 8-element
        # buffer; the masked load touches only its 3 active lanes
        program = _program(_io(8), [
            SimdLoad("va", "x", const_i(5), DataType.I32, 8, vl=3),
            SimdStore("y", const_i(0), "va", DataType.I32, 8, vl=3),
        ])
        out = run_program(program, RVV, {"x": [0, 0, 0, 0, 0, 11, 12, 13]})
        assert list(out.outputs["y"][:3]) == [11, 12, 13]

    def test_masked_register_width_is_vl(self):
        # a 3-lane register cannot feed an 8-lane (unmasked) store
        program = _program(_io(8), [
            SimdLoad("va", "x", const_i(0), DataType.I32, 8, vl=3),
            SimdStore("y", const_i(0), "va", DataType.I32, 8),
        ])
        with pytest.raises(VmTypeError, match="3 lanes, expected 8"):
            run_program(program, RVV)

    def test_mask_overhead_charged_per_masked_statement(self):
        import dataclasses

        cost = dataclasses.replace(RVV.cost, mask_overhead=100.0)
        inputs = {"x": [1, 2, 3, 4, 5, 6, 7, 8]}
        masked = Machine(self._masked_program(3), RVV, cost=cost).run(dict(inputs))
        full = Machine(self._masked_program(None), RVV, cost=cost).run(dict(inputs))
        # three masked statements, 100 extra cycles each
        assert masked.cycles == pytest.approx(full.cycles + 300.0)
