"""Register-liveness analysis over batch-group dataflow graphs."""

from repro.dtypes import DataType
from repro.sched import Dfg, DfgNode, ExtInput, NodeInput
from repro.sched.liveness import (
    group_register_peak,
    last_internal_uses,
    range_inputs,
    register_peak,
    value_positions,
)

F32 = DataType.F32


def _ext(name: str) -> ExtInput:
    return ExtInput((name, "out"), F32)


def chain_dfg(n: int) -> Dfg:
    """n0 -> n1 -> ... with one shared external constant."""
    nodes = []
    for index in range(n):
        first = _ext("x") if index == 0 else NodeInput(f"n{index - 1}")
        nodes.append(DfgNode(
            name=f"n{index}", op="Add", dtype=F32, inputs=(first, _ext("c")),
        ))
    for index in range(n - 1):
        nodes[index].internal_consumers = (f"n{index + 1}",)
    nodes[-1].needs_store = True
    return Dfg(nodes)


def fan_dfg(k: int) -> Dfg:
    """k parallel products reduced by an add chain — linear pressure."""
    nodes = [
        DfgNode(name=f"m{index}", op="Mul", dtype=F32,
                inputs=(_ext("x"), _ext("c")))
        for index in range(k)
    ]
    previous = "m0"
    for index in range(1, k):
        name = f"a{index}"
        nodes.append(DfgNode(
            name=name, op="Add", dtype=F32,
            inputs=(NodeInput(previous), NodeInput(f"m{index}")),
        ))
        previous = name
    consumers = {node.name: [] for node in nodes}
    for node in nodes:
        for ref in node.inputs:
            if isinstance(ref, NodeInput):
                consumers[ref.node].append(node.name)
    for node in nodes:
        node.internal_consumers = tuple(consumers[node.name])
    nodes[-1].needs_store = True
    return Dfg(nodes)


class TestPositionsAndUses:
    def test_value_positions_follow_schedule_order(self):
        dfg = chain_dfg(4)
        assert value_positions(dfg) == {"n0": 0, "n1": 1, "n2": 2, "n3": 3}

    def test_last_internal_use_is_consumer_position(self):
        dfg = chain_dfg(3)
        last = last_internal_uses(dfg)
        assert last["n0"] == 1
        assert last["n1"] == 2
        # Nothing inside the group reads the stored tail value.
        assert last["n2"] == 2

    def test_fan_products_live_until_their_reduction_step(self):
        dfg = fan_dfg(4)
        last = last_internal_uses(dfg)
        positions = value_positions(dfg)
        assert last["m3"] == positions["a3"]
        assert last["m1"] == positions["a1"]


class TestRangeInputs:
    def test_whole_range_inputs_are_external_only(self):
        dfg = chain_dfg(3)
        refs = range_inputs(dfg, 0, 3)
        assert refs == (_ext("x"), _ext("c"))

    def test_mid_range_sees_earlier_values_as_node_inputs(self):
        dfg = chain_dfg(4)
        refs = range_inputs(dfg, 2, 4)
        assert NodeInput("n1") in refs
        assert _ext("c") in refs
        assert _ext("x") not in refs


class TestRegisterPeak:
    def test_chain_peak_is_constant_in_depth(self):
        # One live chain value + one shared constant + the new result.
        assert register_peak(chain_dfg(3), 0, 3) == register_peak(
            chain_dfg(30), 0, 30
        )

    def test_fan_peak_grows_with_fan_width(self):
        small = group_register_peak(fan_dfg(4))
        large = group_register_peak(fan_dfg(12))
        assert large > small
        assert large >= 12  # all products live at the first reduction

    def test_empty_range_has_zero_peak(self):
        assert register_peak(chain_dfg(3), 2, 2) == 0

    def test_single_node_range(self):
        # x + c inputs plus the result register.
        assert register_peak(chain_dfg(3), 0, 1) == 3

    def test_group_peak_matches_full_range(self):
        dfg = fan_dfg(6)
        assert group_register_peak(dfg) == register_peak(dfg, 0, len(dfg.nodes))

    def test_subranges_never_exceed_whole(self):
        dfg = fan_dfg(8)
        n = len(dfg.nodes)
        whole = register_peak(dfg, 0, n)
        for start in range(n):
            for stop in range(start + 1, n + 1):
                assert register_peak(dfg, start, stop) <= whole
