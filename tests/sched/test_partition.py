"""Heterogeneous multi-backend partitioning of one model."""

import json

import pytest

from repro.arch.backend import BackendSpec, example_backend_pair
from repro.arch.presets import preset_names
from repro.bench.models import highpass_model, lowpass_model
from repro.api import CodegenOptions
from repro.errors import ReproError
from repro.sched.partition import partition_model


def _identical_pair(arch="arm_a72"):
    return (
        BackendSpec(name="left", arch=arch),
        BackendSpec(name="right", arch=arch),
    )


class TestSearch:
    def test_identical_backends_stay_on_one(self):
        """With no cost asymmetry and zero transfer cost, no cut can
        beat all-on-one-backend: the partitioner keeps a single
        partition, emits no handoffs, and says so via HCG231."""
        result = partition_model(highpass_model(128), _identical_pair())
        assert not result.split
        assert result.handoffs == ()
        assert {d.code for d in result.diagnostics} == {"HCG231"}
        assert result.predicted_cycles == result.best_single_backend_cycles()
        assert result.transfer_cycles == 0.0

    def test_example_pair_splits_highpass_profitably(self):
        """The acceptance criterion: a 2-backend partition of a paper
        model beats the best single-backend predicted cost."""
        result = partition_model(highpass_model(256), example_backend_pair())
        assert result.split
        assert len(result.partitions) == 2
        assert result.handoffs
        assert result.predicted_cycles < result.best_single_backend_cycles()
        assert result.verified
        assert result.transfer_cycles > 0.0

    def test_partitions_cover_all_computed_actors(self):
        model = highpass_model(128)
        result = partition_model(model, example_backend_pair())
        placed = set()
        for part in result.partitions:
            placed.update(part.actors)
        model_actors = {a.name for a in model.actors}
        # Every original actor lands somewhere; handoff ports are extra.
        assert model_actors <= placed | {
            name for name in placed if name.startswith("xfer")
        }
        assert model_actors <= placed

    def test_single_backend_cycles_has_every_backend(self):
        backends = example_backend_pair()
        result = partition_model(lowpass_model(128), backends)
        assert set(result.single_backend_cycles) == {b.name for b in backends}
        assert result.candidates_evaluated >= len(backends)

    def test_duplicate_backend_names_rejected(self):
        spec = BackendSpec(name="cpu", arch="arm_a72")
        with pytest.raises(ReproError):
            partition_model(highpass_model(64), [spec, spec])

    def test_no_backends_rejected(self):
        with pytest.raises(ReproError):
            partition_model(highpass_model(64), [])


class TestVerification:
    @pytest.mark.parametrize("arch_name", preset_names())
    def test_chosen_plan_verifies_on_every_isa(self, arch_name):
        result = partition_model(
            highpass_model(64), example_backend_pair(arch=arch_name)
        )
        assert result.verified

    def test_verify_false_skips_verification(self):
        result = partition_model(
            highpass_model(64), example_backend_pair(), verify=False
        )
        assert not result.verified

    def test_partitioning_composes_with_memory_budget(self):
        options = CodegenOptions(policy="permissive", memory_budget=256)
        result = partition_model(
            highpass_model(128), example_backend_pair(), options=options
        )
        assert result.verified
        assert result.peak_live_bytes > 0


class TestContract:
    def test_contract_is_json_serializable(self):
        result = partition_model(highpass_model(128), example_backend_pair())
        contract = json.loads(json.dumps(result.contract()))
        assert contract["model"] == result.model
        assert len(contract["partitions"]) == len(result.partitions)
        assert len(contract["handoffs"]) == len(result.handoffs)
        for entry in contract["handoffs"]:
            assert {"buffer", "producer", "consumer"} <= set(entry)

    def test_handoffs_name_producer_and_consumer_backends(self):
        backends = example_backend_pair()
        names = {b.name for b in backends}
        result = partition_model(highpass_model(256), backends)
        assert result.handoffs
        for handoff in result.handoffs:
            assert handoff.producer in names
            assert handoff.consumer in names
            assert handoff.producer != handoff.consumer


class TestApiEntryPoint:
    def test_api_partition_accepts_strings(self):
        from repro import api

        result = api.partition(
            "HighPass",
            backends=["cpu=arm_a72", "accel=arm_a72:simd_scale=0.05:transfer=0.01"],
        )
        assert result.verified

    def test_api_partition_defaults_to_example_pair(self):
        from repro import api

        result = api.partition("LowPass")
        backend_names = {b.name for b in result.backends}
        assert backend_names == {"cpu", "accel"}
