"""Budget-constrained tiling: planning and end-to-end correctness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import get_architecture, preset_names
from repro.bench.runner import make_generator
from repro.bench.synthetic import synthetic_inputs, synthetic_model
from repro.model.semantics import ModelEvaluator
from repro.sched.tiling import plan_tiles, tile_dfg, tile_footprint
from repro.vm.machine import Machine

from tests.sched.test_liveness import chain_dfg, fan_dfg

LANE = 16  # arm_a72: 128-bit registers


def _f32(inputs):
    return {k: np.asarray(v, dtype=np.float32) for k, v in inputs.items()}


class TestPlanTiles:
    def test_no_budget_plans_one_unconstrained_tile(self):
        dfg = fan_dfg(10)
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=None)
        assert not plan.demoted and not plan.tiled
        assert len(plan.tiles) == 1
        assert plan.peak_bytes > 0

    def test_fitting_group_short_circuits_to_one_tile(self):
        dfg = chain_dfg(8)
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=10_000)
        assert len(plan.tiles) == 1 and not plan.tiled
        assert plan.slots == ()

    def test_zero_budget_demotes(self):
        dfg = chain_dfg(4)
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=0)
        assert plan.demoted
        assert plan.tiles == ()
        assert "budget" in plan.reason

    def test_one_byte_budget_demotes(self):
        plan = plan_tiles(chain_dfg(4), width=64, lane_bytes=LANE, budget=1)
        assert plan.demoted
        assert "working-set" in plan.reason

    def test_single_node_group_fits_or_demotes(self):
        dfg = chain_dfg(1)
        single = tile_footprint(dfg, 0, 1, lane_bytes=LANE)
        fits = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=single)
        assert not fits.demoted and len(fits.tiles) == 1
        over = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=single - 1)
        assert over.demoted

    def test_budget_exactly_at_tile_boundary(self):
        # The greedy packer accepts a tile only while its footprint
        # fits, so a budget equal to the largest single-node footprint
        # still tiles (each tile exactly at the boundary) — never over.
        dfg = fan_dfg(10)
        n = len(dfg.nodes)
        single_max = max(
            tile_footprint(dfg, index, index + 1, lane_bytes=LANE)
            for index in range(n)
        )
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=single_max)
        assert not plan.demoted and plan.tiled
        for tile in plan.tiles:
            assert (
                tile_footprint(dfg, tile.start, tile.stop, lane_bytes=LANE)
                <= single_max
            )

    def test_every_tile_respects_the_budget(self):
        dfg = fan_dfg(12)
        for budget in (64, 96, 128, 160, 256, 512):
            plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=budget)
            if plan.demoted:
                continue
            for tile in plan.tiles:
                assert (
                    tile_footprint(dfg, tile.start, tile.stop, lane_bytes=LANE)
                    <= budget
                )
            assert plan.peak_bytes <= budget

    def test_tiles_cover_all_nodes_exactly_once(self):
        dfg = fan_dfg(12)
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=96)
        assert not plan.demoted
        covered = [
            name for tile in plan.tiles for name in tile.names
        ]
        assert covered == [node.name for node in dfg.nodes]

    def test_spill_slots_are_pooled_and_reused(self):
        # A long chain cut into many tiles hands exactly one value
        # across each boundary — one slot, reused at every later cut.
        dfg = chain_dfg(40)
        whole = tile_footprint(dfg, 0, len(dfg.nodes), lane_bytes=LANE)
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=whole)
        # chain peak is depth-constant; force tiling via a mid chain cut
        single = tile_footprint(dfg, 0, 1, lane_bytes=LANE)
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=single)
        if plan.tiled:
            assert len(plan.slots) <= 2
            assert plan.slots_reused >= 0
        fanned = plan_tiles(fan_dfg(16), width=64, lane_bytes=LANE, budget=96)
        assert fanned.tiled
        assert fanned.spilled  # products cross their reduction tiles
        assert fanned.spill_bytes == sum(s.nbytes for s in fanned.slots)

    def test_tile_dfg_rewrites_cross_tile_values(self):
        dfg = fan_dfg(8)
        plan = plan_tiles(dfg, width=64, lane_bytes=LANE, budget=96)
        assert plan.tiled
        first, second = plan.tiles[0], plan.tiles[1]
        sub = tile_dfg(dfg, second.start, second.stop)
        from repro.sched import NodeInput

        names = {node.name for node in sub.nodes}
        for node in sub.nodes:
            for ref in node.inputs:
                if isinstance(ref, NodeInput):
                    assert ref.node in names  # no dangling cross-tile refs
        head = tile_dfg(dfg, first.start, first.stop)
        crossing = [n for n in head.nodes if n.needs_store]
        assert crossing  # values consumed by later tiles must be stored


class TestEndToEnd:
    def test_over_budget_group_tiles_not_demotes_on_all_isas(self):
        """The acceptance criterion: a synthetic model overflowing the
        budget generates via tiling (HCG222, never HCG221) and stays
        bit-exact against the reference on every ISA preset."""
        model = synthetic_model("mixed", 60)
        inputs = _f32(synthetic_inputs(model))
        expected = ModelEvaluator(model).step(inputs)
        for arch_name in preset_names():
            arch = get_architecture(arch_name)
            generator = make_generator(
                "hcg", arch, policy="strict", memory_budget=256
            )
            program = generator.generate(model)
            codes = {d.code for d in generator.last_diagnostics}
            assert "HCG222" in codes, arch_name
            assert "HCG221" not in codes, arch_name
            got = Machine(program, arch).run(inputs)
            np.testing.assert_allclose(
                got.outputs["y"],
                np.asarray(expected["y"], dtype=np.float32),
                rtol=1e-4, atol=1e-4,
            )

    def test_impossible_budget_demotes_with_diagnostic(self):
        model = synthetic_model("cascade", 24)
        inputs = _f32(synthetic_inputs(model))
        expected = ModelEvaluator(model).step(inputs)
        arch = get_architecture("arm_a72")
        generator = make_generator(
            "hcg", arch, policy="permissive", memory_budget=16
        )
        program = generator.generate(model)
        codes = {d.code for d in generator.last_diagnostics}
        assert "HCG221" in codes
        got = Machine(program, arch).run(inputs)
        np.testing.assert_allclose(
            got.outputs["y"], np.asarray(expected["y"], dtype=np.float32),
            rtol=1e-4, atol=1e-4,
        )

    def test_strict_policy_allows_tiling(self):
        # Tiling is not a degradation: strict generation must succeed.
        model = synthetic_model("mixed", 24)
        arch = get_architecture("arm_a72")
        generator = make_generator(
            "hcg", arch, policy="strict", memory_budget=128
        )
        generator.generate(model)

    @settings(max_examples=25, deadline=None)
    @given(budget=st.integers(min_value=0, max_value=2048))
    def test_tiling_never_changes_results(self, budget):
        """Property: any budget (demoting, tiling, or no-op) produces
        exactly the untiled program's outputs."""
        model = synthetic_model("mixed", 18, width=32)
        inputs = _f32(synthetic_inputs(model))
        arch = get_architecture("arm_a72")
        base = Machine(
            make_generator("hcg", arch, policy="strict").generate(model), arch
        ).run(inputs)
        generator = make_generator(
            "hcg", arch, policy="permissive", memory_budget=budget
        )
        got = Machine(generator.generate(model), arch).run(inputs)
        for name, value in base.outputs.items():
            assert np.array_equal(got.outputs[name], value), (name, budget)


class TestGeneratorValidation:
    def test_negative_budget_rejected(self):
        arch = get_architecture("arm_a72")
        with pytest.raises(ValueError):
            make_generator("hcg", arch, memory_budget=-1)

    def test_options_validate_budget(self):
        from repro.api import CodegenOptions

        with pytest.raises(ValueError):
            CodegenOptions(memory_budget=-5)
        options = CodegenOptions(memory_budget=512)
        assert options.generator_kwargs("hcg")["memory_budget"] == 512
