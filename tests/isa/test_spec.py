"""Tests for instruction specs and their computing graphs."""

import numpy as np
import pytest

from repro import ops
from repro.dtypes import DataType
from repro.errors import IsaError
from repro.isa.parser import parse_pattern
from repro.isa.registry import builtin_names, load_builtin
from repro.isa.spec import InstructionSet, InstructionSpec, PatternNode


def _spec(graph: str, code: str = "O1 = f(I1)", name: str = "test", cost: float = 1.0):
    return InstructionSpec(name=name, arch="neon", nodes=parse_pattern(graph),
                           code_template=code, cost=cost)


class TestValidation:
    def test_empty_pattern(self):
        with pytest.raises(IsaError, match="empty"):
            InstructionSpec("x", "neon", (), "code")

    def test_must_end_with_o1(self):
        with pytest.raises(IsaError, match="O1"):
            _spec("Add,i32,4,I1,I2,T1")

    def test_temp_used_before_produced(self):
        with pytest.raises(IsaError, match="used before"):
            _spec("Add,i32,4,T1,I1,O1")

    def test_arity_checked(self):
        with pytest.raises(IsaError, match="operand"):
            _spec("Add,i32,4,I1,O1")

    def test_imm_required_for_shifts(self):
        with pytest.raises(IsaError, match="immediate"):
            _spec("Shr,i32,4,I1,O1")

    def test_imm_rejected_for_add(self):
        with pytest.raises(IsaError, match="no immediate"):
            _spec("Add,i32,4,I1,I2,#2,O1")

    def test_mixed_dtypes_rejected(self):
        with pytest.raises(IsaError, match="mixed"):
            _spec("Mul,i32,4,I1,I2,T1 | Add,i16,8,T1,I3,O1")

    def test_cast_may_differ(self):
        spec = _spec("Cast,f32,4,I1:i32,O1")
        assert spec.nodes[0].operand_dtype(0) is DataType.I32


class TestStructure:
    def test_single_node_properties(self):
        spec = _spec("Add,i32,4,I1,I2,O1")
        assert spec.node_count == 1
        assert spec.depth == 1
        assert spec.n_inputs == 2
        assert spec.lanes == 4
        assert spec.dtype is DataType.I32
        assert spec.vector_bits == 128

    def test_compound_properties(self):
        spec = _spec("Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1")
        assert spec.node_count == 2
        assert spec.depth == 2
        assert spec.input_tokens == ("I1", "I2", "I3")
        assert spec.root.op == "Add"
        assert spec.producer_of("T1").op == "Mul"
        assert spec.producer_of("I1") is None

    def test_wildcard_imm_flag(self):
        assert _spec("Shr,i32,4,I1,#imm,O1").has_wildcard_imm
        assert not _spec("Shr,i32,4,I1,#1,O1").has_wildcard_imm


class TestEvaluation:
    def test_single_node(self):
        spec = _spec("Add,i32,4,I1,I2,O1")
        a = np.array([1, 2, 3, 4], np.int32)
        b = np.array([10, 20, 30, 40], np.int32)
        assert list(spec.evaluate({"I1": a, "I2": b})) == [11, 22, 33, 44]

    def test_compound_vmla(self):
        spec = _spec("Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1")
        a = np.array([1, 2, 3, 4], np.int32)
        b = np.array([2, 2, 2, 2], np.int32)
        c = np.array([100, 100, 100, 100], np.int32)
        assert list(spec.evaluate({"I1": a, "I2": b, "I3": c})) == [102, 104, 106, 108]

    def test_fixed_imm(self):
        spec = _spec("Add,i32,4,I1,I2,T1 | Shr,i32,4,T1,#1,O1")
        a = np.array([3, 5, 7, 9], np.int32)
        b = np.array([1, 1, 1, 1], np.int32)
        assert list(spec.evaluate({"I1": a, "I2": b})) == [2, 3, 4, 5]

    def test_wildcard_imm_required(self):
        spec = _spec("Shr,i32,4,I1,#imm,O1")
        a = np.array([8, 8, 8, 8], np.int32)
        with pytest.raises(IsaError, match="immediate"):
            spec.evaluate({"I1": a})
        assert list(spec.evaluate({"I1": a}, imm=2)) == [2, 2, 2, 2]

    def test_missing_input(self):
        spec = _spec("Add,i32,4,I1,I2,O1")
        with pytest.raises(IsaError, match="missing inputs"):
            spec.evaluate({"I1": np.zeros(4, np.int32)})


class TestRenderCode:
    def test_substitution(self):
        spec = _spec("Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1",
                     code="O1 = vmlaq_s32(I3, I1, I2)")
        text = spec.render_code("d", {"I1": "a", "I2": "b", "I3": "c"})
        assert text == "d = vmlaq_s32(c, a, b)"

    def test_imm_substitution(self):
        spec = _spec("Shr,i32,4,I1,#imm,O1", code="O1 = vshrq_n_s32(I1, #imm)")
        assert spec.render_code("y", {"I1": "x"}, imm=3) == "y = vshrq_n_s32(x, 3)"

    def test_long_tokens_not_clobbered(self):
        nodes = parse_pattern(
            "Add,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,T2 | Add,i32,4,T2,I10,O1"
        )
        # synthetic 10-input style name check through render path
        spec = InstructionSpec("t", "neon", nodes, "O1 = f(I1, I10)")
        text = spec.render_code("o", {"I1": "first", "I2": "x", "I3": "x", "I10": "tenth"})
        assert text == "o = f(first, tenth)"


class TestBuiltinSets:
    @pytest.mark.parametrize("name", ["neon", "sse4", "avx2"])
    def test_loads(self, name):
        iset = load_builtin(name)
        assert iset.instructions
        assert iset.vector_bits in (128, 256)

    def test_builtin_names(self):
        assert set(builtin_names()) >= {"neon", "sse4", "avx2"}

    @pytest.mark.parametrize("name", ["neon", "sse4", "avx2"])
    def test_every_instruction_evaluates_like_its_ops(self, name, rng):
        """Property: an instruction's evaluate() equals composing the
        shared op semantics over its pattern graph by hand."""
        iset = load_builtin(name)
        for spec in iset.instructions:
            lanes = spec.lanes
            inputs = {}
            for position, token in enumerate(spec.input_tokens):
                dtype = None
                # find the annotated dtype for the operand
                for node in spec.nodes:
                    values = [t for t in node.inputs if not t.startswith("#")]
                    if token in values:
                        dtype = node.operand_dtype(values.index(token))
                        break
                assert dtype is not None
                if dtype.is_float:
                    data = rng.uniform(1.0, 4.0, size=lanes).astype(dtype.numpy_dtype)
                else:
                    data = rng.integers(1, 20, size=lanes).astype(dtype.numpy_dtype)
                inputs[token] = data
            imm = 1 if spec.has_wildcard_imm else None
            out = spec.evaluate(dict(inputs), imm=imm)
            # manual composition
            env = dict(inputs)
            for node in spec.nodes:
                args = [env[t] for t in node.value_inputs]
                node_imm = None
                if node.imm_token == "#imm":
                    node_imm = imm
                elif node.imm_token is not None:
                    node_imm = int(node.imm_token[1:])
                env[node.output] = ops.apply_op(node.op, node.dtype, args, node_imm)
            assert np.array_equal(out, env["O1"]), spec.name

    def test_lanes_for(self):
        neon = load_builtin("neon")
        assert neon.lanes_for(DataType.I32) == 4
        assert neon.lanes_for(DataType.I8) == 16
        avx2 = load_builtin("avx2")
        assert avx2.lanes_for(DataType.F32) == 8

    def test_by_name_missing(self):
        with pytest.raises(IsaError, match="no instruction"):
            load_builtin("neon").by_name("vfrobq_s32")

    def test_restricted_removes_compound(self):
        neon = load_builtin("neon")
        basic = neon.restricted(max_nodes=1)
        assert basic.max_node_count == 1
        assert len(basic.instructions) < len(neon.instructions)

    def test_duplicate_names_rejected(self):
        spec = _spec("Add,i32,4,I1,I2,O1", name="dup")
        with pytest.raises(IsaError, match="duplicate"):
            InstructionSet("neon", 128, (spec, spec))

    def test_wrong_width_rejected(self):
        spec = _spec("Add,i32,4,I1,I2,O1", name="narrow")
        with pytest.raises(IsaError, match="128-bit pattern"):
            InstructionSet("neon", 256, (spec,))
