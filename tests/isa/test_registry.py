"""Tests for the instruction-set registry."""

import pytest

from repro.errors import IsaError
from repro.isa.parser import parse_instruction_set
from repro.isa.registry import (
    builtin_names,
    clear_custom,
    load_builtin,
    register_instruction_set,
)


class TestRegistry:
    def test_unknown_set(self):
        with pytest.raises(IsaError, match="no built-in"):
            load_builtin("vliw9000")

    def test_caching_returns_same_object(self):
        assert load_builtin("neon") is load_builtin("neon")

    def test_custom_registration_and_shadowing(self):
        custom = parse_instruction_set(
            "arch: rvv\nvector_bits: 128\n"
            "Ins: vadd_vv ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = vadd_vv(I1, I2)"
        )
        try:
            register_instruction_set(custom)
            assert load_builtin("rvv").arch == "rvv"
            # custom sets can also shadow builtins by name
            register_instruction_set(custom, name="neon")
            assert load_builtin("neon").arch == "rvv"
        finally:
            clear_custom()
        assert load_builtin("neon").arch == "neon"
