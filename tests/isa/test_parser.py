"""Tests for the .si file format parser."""

import pytest

from repro.dtypes import DataType
from repro.errors import IsaError, IsaParseError
from repro.isa.parser import (
    dump_instruction_set,
    load_instruction_set,
    parse_instruction_set,
    parse_pattern,
)
from repro.isa.registry import builtin_names, load_builtin

GOOD = """
# comment
arch: neon
vector_bits: 128

Ins: vaddq_s32 ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = vaddq_s32(I1, I2) ; Cost: 1
Ins: vmlaq_s32 ; Graph: Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1 ; Code: O1 = vmlaq_s32(I3, I1, I2) ; Cost: 2
"""


class TestParsePattern:
    def test_single_node(self):
        nodes = parse_pattern("Add, i32, 4, I1, I2, O1")
        assert len(nodes) == 1
        assert nodes[0].op == "Add"
        assert nodes[0].dtype is DataType.I32
        assert nodes[0].inputs == ("I1", "I2")

    def test_multi_node(self):
        nodes = parse_pattern("Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1")
        assert [n.output for n in nodes] == ["T1", "O1"]

    def test_dtype_annotation(self):
        nodes = parse_pattern("Cast,f32,4,I1:i32,O1")
        assert nodes[0].operand_dtype(0) is DataType.I32

    def test_too_few_fields(self):
        with pytest.raises(IsaParseError, match="at least"):
            parse_pattern("Add,i32")

    def test_bad_dtype(self):
        with pytest.raises(IsaParseError, match="unknown data type"):
            parse_pattern("Add,q32,4,I1,I2,O1")

    def test_bad_lanes(self):
        with pytest.raises(IsaParseError, match="lane count"):
            parse_pattern("Add,i32,four,I1,I2,O1")


class TestParseDocument:
    def test_good_document(self):
        iset = parse_instruction_set(GOOD)
        assert iset.arch == "neon"
        assert iset.vector_bits == 128
        assert len(iset.instructions) == 2
        assert iset.by_name("vmlaq_s32").cost == 2

    def test_headers_required_before_records(self):
        with pytest.raises(IsaParseError, match="must precede"):
            parse_instruction_set(
                "Ins: x ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = f(I1,I2)"
            )

    def test_empty_document(self):
        with pytest.raises(IsaParseError, match="missing"):
            parse_instruction_set("# nothing\n")

    def test_no_instructions(self):
        with pytest.raises(IsaParseError, match="no instructions"):
            parse_instruction_set("arch: neon\nvector_bits: 128\n")

    def test_missing_field(self):
        with pytest.raises(IsaParseError, match="missing field"):
            parse_instruction_set(
                "arch: neon\nvector_bits: 128\nIns: x ; Code: O1 = f(I1)"
            )

    def test_bad_cost(self):
        with pytest.raises(IsaParseError, match="bad cost"):
            parse_instruction_set(
                "arch: neon\nvector_bits: 128\n"
                "Ins: x ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = f(I1,I2) ; Cost: cheap"
            )

    def test_duplicate_field(self):
        with pytest.raises(IsaParseError, match="duplicate field"):
            parse_instruction_set(
                "arch: neon\nvector_bits: 128\n"
                "Ins: x ; Ins: y ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = f(I1,I2)"
            )

    def test_bad_vector_bits(self):
        with pytest.raises(IsaParseError, match="vector_bits"):
            parse_instruction_set("arch: neon\nvector_bits: wide\n")

    def test_missing_file(self, tmp_path):
        with pytest.raises(IsaParseError, match="cannot read"):
            load_instruction_set(tmp_path / "nope.si")


class TestFormatVersion2:
    V2 = (
        "arch: rvv\nvector_bits: 256\nformat: 2\nfeatures: scalable\n"
        "Ins: vadd_vv_i32 ; Graph: Add,i32,8,I1,I2,O1 ; "
        "Code: O1 = __riscv_vadd_vv_i32m1(I1, I2, VL) ; Cost: 1\n"
    )

    def test_features_header_parses(self):
        iset = parse_instruction_set(self.V2)
        assert iset.features == ("scalable",)
        assert iset.is_scalable and not iset.has_masks
        assert iset.supports_masked_tail

    def test_format_1_has_no_features(self):
        iset = parse_instruction_set(GOOD)
        assert iset.features == ()
        assert not iset.supports_masked_tail

    def test_features_require_format_2(self):
        text = self.V2.replace("format: 2\n", "")
        with pytest.raises(IsaParseError, match="requires 'format: 2'"):
            parse_instruction_set(text)

    def test_unknown_feature_rejected(self):
        text = self.V2.replace("features: scalable", "features: turbo")
        with pytest.raises(IsaError, match="unknown feature"):
            parse_instruction_set(text)

    def test_unsupported_format_version(self):
        text = self.V2.replace("format: 2", "format: 7")
        with pytest.raises(IsaParseError, match="unsupported format 7"):
            parse_instruction_set(text)

    def test_bad_format_value(self):
        text = self.V2.replace("format: 2", "format: two")
        with pytest.raises(IsaParseError, match="bad format"):
            parse_instruction_set(text)

    def test_dump_emits_v2_headers(self):
        iset = parse_instruction_set(self.V2)
        text = dump_instruction_set(iset)
        assert "format: 2" in text
        assert "features: scalable" in text

    def test_builtin_masked_sets_declare_features(self):
        assert load_builtin("rvv").features == ("scalable",)
        assert load_builtin("avx512").features == ("mask",)
        for name in ("neon", "sse4", "avx2"):
            assert load_builtin(name).features == ()


class TestRoundTrip:
    @pytest.mark.parametrize("name", ["neon", "sse4", "avx2", "rvv", "avx512"])
    def test_builtin_sets_round_trip(self, name):
        original = load_builtin(name)
        text = dump_instruction_set(original)
        restored = parse_instruction_set(text, source=f"{name}-roundtrip")
        assert restored.arch == original.arch
        assert restored.vector_bits == original.vector_bits
        assert restored.features == original.features
        assert len(restored.instructions) == len(original.instructions)
        for before, after in zip(original.instructions, restored.instructions):
            assert before == after


class TestPaperCompatibility:
    def test_verbatim_paper_record_parses(self):
        """§3.3's exact example form: no Ins field, spaces around colons,
        trailing semicolon — the name derives from the code template."""
        text = (
            "arch: neon\nvector_bits: 128\n"
            "Graph : Add, i32, 4, I1, I2, O1 ; Code : O1 = vaddq_s32(I1, I2);\n"
        )
        iset = parse_instruction_set(text, source="paper")
        (spec,) = iset.instructions
        assert spec.name == "vaddq_s32"
        assert spec.root.op == "Add"
        assert spec.code_template.strip() == "O1 = vaddq_s32(I1, I2)"

    def test_unnameable_record_still_errors(self):
        text = (
            "arch: neon\nvector_bits: 128\n"
            "Graph: Add,i32,4,I1,I2,O1 ; Code: something weird\n"
        )
        with pytest.raises(IsaParseError, match="missing field"):
            parse_instruction_set(text)
