"""The ``.si`` linter: one test per stable finding code."""

import pytest

from repro.isa.lint import (LintFinding, default_isa_paths, lint_file,
                            lint_paths, lint_text)

HEADER = "arch: neon\nvector_bits: 128\n"

CLEAN = HEADER + (
    "Ins: vaddq_s32 ; Graph: Add,i32,4,I1,I2,O1 ; "
    "Code: O1 = vaddq_s32(I1, I2) ; Cost: 1\n"
)


def codes(findings):
    return [f.code for f in findings]


class TestCleanInput:
    def test_clean_record_has_no_findings(self):
        assert lint_text(CLEAN) == []

    def test_packaged_instruction_sets_are_clean(self):
        paths = default_isa_paths()
        assert len(paths) == 5
        assert lint_paths() == []

    def test_comments_and_blank_lines_are_ignored(self):
        assert lint_text(CLEAN + "\n# trailing comment\n") == []


class TestIsa100Parse:
    def test_empty_document(self):
        findings = lint_text(HEADER)
        assert codes(findings) == ["ISA100"]
        assert "no records" in findings[0].message

    def test_record_before_headers(self):
        text = "Ins: x ; Graph: Add,i32,4,I1,I2,O1 ; Code: O1 = x(I1, I2)\n"
        findings = lint_text(text)
        assert "ISA100" in codes(findings)
        assert any("must precede" in f.message for f in findings)

    def test_missing_graph_field(self):
        findings = lint_text(HEADER + "Ins: x ; Code: O1 = x(I1)\n")
        assert codes(findings) == ["ISA100"]
        assert "graph" in findings[0].message

    def test_repeated_field_rejected(self):
        findings = lint_text(
            HEADER + "Ins: x ; Ins: y ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = x(I1, I2)\n")
        assert codes(findings) == ["ISA100"]

    def test_garbage_pattern(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: what,even ; Code: O1 = x(I1)\n")
        assert codes(findings) == ["ISA100"]

    def test_bad_vector_bits_header(self):
        findings = lint_text("arch: neon\nvector_bits: wide\n" + CLEAN[len(HEADER):])
        assert "ISA100" in codes(findings)

    def test_bad_cost_value(self):
        findings = lint_text(
            HEADER + "Ins: vaddq_s32 ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = vaddq_s32(I1, I2) ; Cost: cheap\n")
        assert codes(findings) == ["ISA100"]

    def test_unreadable_file(self, tmp_path):
        findings = lint_file(tmp_path / "missing.si")
        assert codes(findings) == ["ISA100"]
        assert "cannot read" in findings[0].message

    def test_name_derived_from_code_when_ins_missing(self):
        text = HEADER + ("Graph: Add,i32,4,I1,I2,O1 ; "
                         "Code: O1 = vaddq_s32(I1, I2)\n")
        assert lint_text(text) == []


class TestIsa101DuplicateName:
    def test_same_name_twice(self):
        text = CLEAN + (
            "Ins: vaddq_s32 ; Graph: Sub,i32,4,I1,I2,O1 ; "
            "Code: O1 = vaddq_s32(I1, I2)\n")
        findings = lint_text(text)
        assert codes(findings) == ["ISA101"]
        assert "line 3" in findings[0].message


class TestIsa102DuplicatePattern:
    def test_structurally_identical_graphs(self):
        text = CLEAN + (
            "Ins: vaddq_s32_alt ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = vaddq_s32_alt(I1, I2)\n")
        findings = lint_text(text)
        assert codes(findings) == ["ISA102"]
        assert "vaddq_s32" in findings[0].message

    def test_different_lanes_are_distinct(self):
        text = CLEAN + (
            "Ins: vadd_s32 ; Graph: Add,i32,2,I1,I2,O1 ; "
            "Code: O1 = vadd_s32(I1, I2)\n")
        # 2-lane variant fails the 128-bit width check but is NOT a dup
        assert "ISA102" not in codes(lint_text(text))


class TestIsa103UnknownOp:
    def test_unknown_op_is_reported_with_suggestions(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: Frobnicate,i32,4,I1,I2,O1 ; "
            "Code: O1 = x(I1, I2)\n")
        assert codes(findings) == ["ISA103"]
        assert "Frobnicate" in findings[0].message


class TestIsa104OperandMismatch:
    def test_wrong_arity(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: Abs,i32,4,I1,I2,O1 ; "
            "Code: O1 = x(I1, I2)\n")
        assert "ISA104" in codes(findings)
        assert any("1 value operand" in f.message for f in findings)

    def test_template_missing_o1(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: tmp = x(I1, I2)\n")
        assert "ISA104" in codes(findings)
        assert any("never assigns O1" in f.message for f in findings)

    def test_template_references_unknown_input(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: Abs,i32,4,I1,O1 ; "
            "Code: O1 = x(I1, I9)\n")
        assert "ISA104" in codes(findings)
        assert any("I9" in f.message for f in findings)

    def test_template_drops_a_pattern_input(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = x(I1, I1)\n")
        assert "ISA104" in codes(findings)
        assert any("I2 never appears" in f.message for f in findings)

    def test_imm_wildcard_must_reach_template(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: Shl,i32,4,I1,#imm,O1 ; "
            "Code: O1 = x(I1, 3)\n")
        assert "ISA104" in codes(findings)

    def test_template_using_internal_temporary(self):
        text = HEADER + (
            "Ins: x ; Graph: Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1 ; "
            "Code: O1 = x(I1, I2, I3, T1)\n")
        findings = lint_text(text)
        assert "ISA104" in codes(findings)
        assert any("temporary T1" in f.message for f in findings)

    def test_multi_node_pattern_clean(self):
        text = HEADER + (
            "Ins: vmlaq_s32 ; Graph: Mul,i32,4,I1,I2,T1 | Add,i32,4,T1,I3,O1 ; "
            "Code: O1 = vmlaq_s32(I3, I1, I2) ; Cost: 2\n")
        assert lint_text(text) == []


class TestIsa105DtypeAndWidth:
    def test_unsupported_dtype_for_op(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: BitAnd,f32,4,I1,I2,O1 ; "
            "Code: O1 = x(I1, I2)\n")
        assert "ISA105" in codes(findings)
        assert any("does not support" in f.message for f in findings)

    def test_pattern_width_must_fill_register(self):
        findings = lint_text(
            HEADER + "Ins: x ; Graph: Add,i32,2,I1,I2,O1 ; "
            "Code: O1 = x(I1, I2)\n")
        assert "ISA105" in codes(findings)
        assert any("64-bit" in f.message for f in findings)


class TestIsa106Cost:
    @pytest.mark.parametrize("cost", ["0", "-1", "-0.5"])
    def test_non_positive_cost(self, cost):
        findings = lint_text(
            HEADER + "Ins: vaddq_s32 ; Graph: Add,i32,4,I1,I2,O1 ; "
            f"Code: O1 = vaddq_s32(I1, I2) ; Cost: {cost}\n")
        assert codes(findings) == ["ISA106"]


V2_HEADER = "arch: rvv\nvector_bits: 128\nformat: 2\nfeatures: scalable\n"


class TestIsa107FormatHeaders:
    def test_features_require_format_2(self):
        text = ("arch: x\nvector_bits: 128\nfeatures: mask\n"
                + CLEAN[len(HEADER):])
        findings = lint_text(text)
        assert "ISA107" in codes(findings)
        assert any("format: 2" in f.message for f in findings)

    def test_unknown_feature(self):
        text = ("arch: x\nvector_bits: 128\nformat: 2\nfeatures: turbo\n"
                + CLEAN[len(HEADER):])
        findings = lint_text(text)
        assert "ISA107" in codes(findings)
        assert any("turbo" in f.message for f in findings)

    def test_duplicate_feature(self):
        text = ("arch: x\nvector_bits: 128\nformat: 2\nfeatures: mask, mask\n"
                + CLEAN[len(HEADER):])
        assert "ISA107" in codes(lint_text(text))

    def test_unsupported_format_version(self):
        text = ("arch: x\nvector_bits: 128\nformat: 7\n"
                + CLEAN[len(HEADER):])
        findings = lint_text(text)
        assert "ISA107" in codes(findings)
        assert any("unsupported format 7" in f.message for f in findings)

    def test_bad_format_value(self):
        text = ("arch: x\nvector_bits: 128\nformat: two\n"
                + CLEAN[len(HEADER):])
        assert "ISA107" in codes(lint_text(text))

    def test_valid_v2_headers_are_clean(self):
        text = ("arch: x\nvector_bits: 128\nformat: 2\nfeatures: mask\n"
                + CLEAN[len(HEADER):])
        assert lint_text(text) == []


class TestIsa108VlToken:
    def test_scalable_template_must_carry_vl(self):
        text = V2_HEADER + (
            "Ins: vadd ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = __riscv_vadd_vv_i32m1(I1, I2)\n")
        findings = lint_text(text)
        assert codes(findings) == ["ISA108"]
        assert "no VL token" in findings[0].message

    def test_vl_token_needs_scalable_feature(self):
        text = HEADER + (
            "Ins: vadd ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = vadd(I1, I2, VL)\n")
        findings = lint_text(text)
        assert codes(findings) == ["ISA108"]
        assert "scalable" in findings[0].message

    def test_scalable_with_vl_is_clean(self):
        text = V2_HEADER + (
            "Ins: vadd ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = __riscv_vadd_vv_i32m1(I1, I2, VL)\n")
        assert lint_text(text) == []

    def test_vl_substring_of_identifier_does_not_count(self):
        # "VLX" is not the VL token; word-boundary matching must not
        # accept it in a scalable file
        text = V2_HEADER + (
            "Ins: vadd ; Graph: Add,i32,4,I1,I2,O1 ; "
            "Code: O1 = vadd(I1, I2, VLX)\n")
        assert codes(lint_text(text)) == ["ISA108"]


class TestReporting:
    def test_format_is_stable(self):
        finding = LintFinding(code="ISA103", source="x.si", line=7,
                              instruction="vfoo", message="unknown op")
        assert finding.format() == "x.si:7: ISA103 [vfoo]: unknown op"

    def test_findings_accumulate_across_records(self):
        text = HEADER + (
            "Ins: a ; Graph: Frob,i32,4,I1,O1 ; Code: O1 = a(I1)\n"
            "Ins: b ; Graph: Add,i32,4,I1,I2,O1 ; Code: tmp = b(I1, I2)\n")
        found = codes(lint_text(text))
        assert "ISA103" in found and "ISA104" in found

    def test_lint_paths_accepts_explicit_files(self, tmp_path):
        good = tmp_path / "good.si"
        good.write_text(CLEAN)
        bad = tmp_path / "bad.si"
        bad.write_text(HEADER + "Ins: x ; Graph: Frob,i32,4,I1,O1 ; "
                       "Code: O1 = x(I1)\n")
        findings = lint_paths([good, bad])
        assert codes(findings) == ["ISA103"]
        assert findings[0].source == str(bad)
