"""The redesigned ModelSource / BackendSpec request vocabulary."""

import warnings

import pytest

from repro.api import BackendSpec, GenerateRequest, ModelSource, example_backend_pair
from repro.bench.models import fir_model
from repro.errors import ReproError
from repro.source import _reset_deprecation_warnings


class TestParseGrammar:
    @pytest.mark.parametrize("text,expected", [
        ("FIR", ModelSource.builtin("FIR")),
        ("FIR@256", ModelSource.builtin("FIR", 256)),
        ("models/fir.xml", ModelSource.path("models/fir.xml")),
        ("design.mdl", ModelSource.path("design.mdl")),
        ("synthetic:300", ModelSource.synthetic(300)),
        ("synthetic:mixed:64", ModelSource.synthetic(64, topology="mixed")),
        (
            "synthetic:cascade:300:seed=7:width=48",
            ModelSource.synthetic(300, topology="cascade", width=48, seed=7),
        ),
    ])
    def test_grammar_forms(self, text, expected):
        assert ModelSource.parse(text) == expected

    def test_parse_passes_sources_through(self):
        source = ModelSource.builtin("FFT")
        assert ModelSource.parse(source) is source

    def test_parse_never_warns(self):
        _reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ModelSource.parse("FIR@64")

    def test_default_width_reaches_file_sources(self):
        source = ModelSource.parse("design.mdl", default_width=48)
        assert source.kind == "file" and source.width == 48

    @pytest.mark.parametrize("text", [
        "", "NoSuchModel@64", "synthetic", "synthetic:mixed",
        "synthetic:300:depth=2", "FIR@tiny",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ReproError):
            ModelSource.parse(text)

    def test_unknown_bare_name_falls_back_to_file(self):
        # An unrecognized bare word is treated as a path (resolution,
        # not parsing, reports the missing file).
        assert ModelSource.parse("NoSuchModel").kind == "file"


class TestValidationAndResolve:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ReproError):
            ModelSource.synthetic(32, topology="torus")

    def test_scale_must_be_at_least_two(self):
        with pytest.raises(ReproError):
            ModelSource.builtin("FIR", scale=1)

    def test_builtin_resolves_at_scale(self):
        model = ModelSource.builtin("FIR", 128).resolve()
        assert model.name == "FIR"
        inport = next(a for a in model.actors if a.actor_type == "Inport")
        assert inport.output("out").shape == (128,)

    def test_synthetic_resolve_honors_seed_and_width(self):
        source = ModelSource.parse("synthetic:mixed:24:seed=3:width=32")
        model = source.resolve()
        assert "s3" in model.name

    def test_inline_resolves_to_the_same_object(self):
        model = fir_model(64)
        assert ModelSource.inline(model).resolve() is model


class TestWireForm:
    @pytest.mark.parametrize("source", [
        ModelSource.builtin("FIR"),
        ModelSource.builtin("DCT", 512),
        ModelSource.path("models/fir.xml", width=32),
        ModelSource.synthetic(300, topology="multirate", seed=5),
    ])
    def test_round_trip(self, source):
        assert ModelSource.from_wire(source.to_wire()) == source

    def test_inline_is_not_wire_safe(self):
        source = ModelSource.inline(fir_model(64))
        with pytest.raises(ReproError):
            source.to_wire()
        with pytest.raises(ReproError):
            ModelSource.from_wire({"kind": "inline"})

    def test_unknown_wire_fields_rejected(self):
        with pytest.raises(ReproError):
            ModelSource.from_wire({"kind": "builtin", "name": "FIR", "x": 1})


class TestLegacyCoercion:
    def test_model_object_silently_becomes_inline(self):
        model = fir_model(64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            source = ModelSource.of(model)
        assert source.kind == "inline" and source.model is model

    def test_raw_string_warns_exactly_once_per_process(self):
        _reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            GenerateRequest(model="FIR")
            GenerateRequest(model="HighPass")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "ModelSource" in str(deprecations[0].message)

    def test_request_normalizes_model_to_source(self):
        _reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            request = GenerateRequest(model="FIR@256")
        assert isinstance(request.model, ModelSource)
        assert request.source.describe() == "FIR@256"
        assert request.resolve_model().name == "FIR"

    def test_unsupported_model_type_rejected(self):
        with pytest.raises(ReproError):
            ModelSource.of(42)


class TestBackendSpec:
    def test_parse_bare_arch_names_itself(self):
        spec = BackendSpec.parse("arm_a72")
        assert spec.name == "arm_a72" and spec.arch == "arm_a72"

    def test_parse_full_grammar(self):
        spec = BackendSpec.parse("accel=arm_a72:simd_scale=0.25:transfer=0.5")
        assert spec.name == "accel"
        assert dict(spec.cost_overrides) == {"simd_scale": 0.25}
        assert spec.transfer_cost_per_byte == 0.5

    def test_overrides_reach_the_cost_table(self):
        spec = BackendSpec.parse("accel=arm_a72:scalar_scale=4")
        assert spec.cost_table().scalar_scale == 4.0
        base = BackendSpec.parse("arm_a72").cost_table().scalar_scale
        assert base != 4.0

    def test_parse_list_rejects_duplicates(self):
        with pytest.raises(ReproError):
            BackendSpec.parse_list("cpu=arm_a72,cpu=riscv_u74")

    @pytest.mark.parametrize("text", [
        "", "cpu=not_an_arch", "cpu=arm_a72:bogus_field=1",
        "cpu=arm_a72:transfer=fast", "cpu=arm_a72:simd_scale",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ReproError):
            BackendSpec.parse(text)

    def test_describe_round_trips_through_parse(self):
        spec = BackendSpec.parse("accel=riscv_u74:simd_scale=0.5:transfer=0.25")
        assert BackendSpec.parse(spec.describe()) == spec

    def test_wire_round_trip(self):
        spec = BackendSpec.parse("accel=arm_a72:simd_scale=0.25:transfer=0.5")
        assert BackendSpec.from_wire(spec.to_wire()) == spec

    def test_example_pair_shape(self):
        cpu, accel = example_backend_pair("riscv_u74")
        assert cpu.name == "cpu" and accel.name == "accel"
        assert cpu.arch == accel.arch == "riscv_u74"
        assert accel.transfer_cost_per_byte > 0
        assert cpu.transfer_cost_per_byte == 0
