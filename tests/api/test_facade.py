"""Contract tests for the stable ``repro.api`` facade (ISSUE satellite).

The facade is the supported programmatic surface: one request type, one
result type, one ``generate()`` entry point. These tests pin the
round-trip behaviour and the deprecation shims that keep the legacy
``generate_verified`` call paths working.
"""

import dataclasses
import warnings

import pytest

from repro.api import (
    GENERATOR_NAMES,
    CodegenOptions,
    GenerateRequest,
    GenerateResult,
    generate,
    generate_many,
)
from repro.arch.presets import get_architecture
from repro.bench.models import fir_model
from repro.errors import ReproError


def request_for(model, **kwargs):
    options = kwargs.pop(
        "options", CodegenOptions(policy="permissive", use_cache=False)
    )
    return GenerateRequest(model=model, options=options, **kwargs)


class TestGenerateRequest:
    def test_unknown_generator_rejected(self):
        with pytest.raises(ReproError, match="unknown generator"):
            GenerateRequest(model="FIR", generator="gcc")

    def test_request_is_frozen(self):
        request = request_for("FIR")
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.generator = "dfsynth"

    def test_resolves_benchmark_name(self):
        assert request_for("FIR").resolve_model().name == "FIR"

    def test_resolves_model_file(self):
        model = request_for("models/fir.xml").resolve_model()
        assert model.actors

    def test_resolves_model_object_as_is(self):
        model = fir_model(8)
        assert request_for(model).resolve_model() is model


class TestGenerateRoundTrip:
    def test_one_request_one_result(self):
        result = generate(request_for(fir_model(8)))
        assert isinstance(result, GenerateResult)
        assert result.model == "FIR"
        assert result.generator == "hcg"
        assert result.arch == "arm_a72"
        assert "void" in result.c_source
        assert result.program.body
        assert result.from_cache is False
        assert result.verified is False
        assert result.cache_key is None  # caching disabled in this request

    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_every_generator_served(self, name):
        result = generate(request_for(fir_model(8), generator=name))
        assert result.generator == name
        assert result.c_source

    def test_result_is_frozen(self):
        result = generate(request_for(fir_model(8)))
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.c_source = ""

    def test_verify_flag_verifies(self):
        result = generate(request_for(fir_model(8), verify=True))
        assert result.verified is True

    def test_options_steer_generation(self):
        # Simulink Coder unrolls elementwise code at or below the limit
        unrolled = generate(request_for(
            fir_model(8), generator="simulink_coder",
            options=CodegenOptions(policy="permissive", use_cache=False,
                                   unroll_limit=8),
        ))
        looped = generate(request_for(
            fir_model(8), generator="simulink_coder",
            options=CodegenOptions(policy="permissive", use_cache=False,
                                   unroll_limit=0),
        ))
        assert unrolled.c_source != looped.c_source

    def test_generate_many_preserves_request_order(self):
        requests = [
            request_for(fir_model(8), generator=name)
            for name in GENERATOR_NAMES
        ]
        results = generate_many(requests)
        assert [r.generator for r in results] == list(GENERATOR_NAMES)


class TestDeprecationShims:
    """Old ``generate_verified`` call paths keep working but warn once."""

    @pytest.mark.parametrize("name", GENERATOR_NAMES)
    def test_generate_verified_warns_exactly_once(self, name):
        from repro.bench.runner import make_generator

        generator = make_generator(
            name, get_architecture("arm_a72"), policy="permissive"
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            program = generator.generate_verified(fir_model(8))
        assert program.body
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.api.generate" in str(deprecations[0].message)

    def test_facade_path_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            generate(request_for(fir_model(8), verify=True))
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
