"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700, INTEL_I7_8700_SSE4
from repro.compiler import CLANG, GCC, PERFECT
from repro.kernels import default_library


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(params=["arm_a72", "intel_i7_8700", "intel_i7_8700_sse4"])
def any_arch(request):
    return {
        "arm_a72": ARM_A72,
        "intel_i7_8700": INTEL_I7_8700,
        "intel_i7_8700_sse4": INTEL_I7_8700_SSE4,
    }[request.param]


@pytest.fixture(params=["gcc", "clang"])
def any_compiler(request):
    return {"gcc": GCC, "clang": CLANG}[request.param]


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
