"""Crash-safety of the selection history: atomic saves, quarantine,
schema versioning, per-entry recovery and stale-id validation."""

import json
import os

import pytest

from repro.arch import ARM_A72
from repro.codegen.hcg.history import (
    SCHEMA_VERSION,
    SelectionHistory,
    SelectionKey,
)
from repro.codegen.hcg.intensive import IntensiveSynthesizer
from repro.diagnostics import DiagnosticsCollector
from repro.dtypes import DataType
from repro.errors import HistoryError
from repro.kernels import default_library
from repro.model.actor_defs import create_actor


KEY = SelectionKey("fft", DataType.F32, (("n", 16),))


class TestAtomicSave:
    def test_save_writes_versioned_payload(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        history.store(KEY, "fft.radix2")
        payload = json.loads(path.read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["entries"] == {KEY.to_str(): "fft.radix2"}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        for index in range(5):
            history.store(
                SelectionKey("fft", DataType.F32, (("n", index + 2),)), "fft.mixed"
            )
        # Only the payload and the advisory-lock sidecar may remain; a
        # leftover .tmp would mean a non-atomic save.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "history.json", "history.json.lock",
        ]

    def test_unwritable_destination_is_a_diagnostic_not_a_crash(self, tmp_path):
        history = SelectionHistory()
        history.path = tmp_path / "no" / "such" / "dir" / "history.json"
        history.store(KEY, "fft.radix2")  # must not raise
        assert "HCG304" in history.diagnostics.codes()
        assert history.lookup(KEY) == "fft.radix2"  # in-memory copy intact

    def test_round_trip(self, tmp_path):
        path = tmp_path / "history.json"
        first = SelectionHistory(path)
        first.store(KEY, "fft.radix4_simd")
        first.store(SelectionKey("dct", DataType.F64, ()), "dct.lee")
        second = SelectionHistory(path)
        assert len(second) == 2
        assert second.lookup(KEY) == "fft.radix4_simd"


class TestQuarantine:
    def test_corrupt_json_quarantined_and_rebuilt(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text("{ definitely not json")
        history = SelectionHistory(path)
        assert len(history) == 0
        assert "HCG301" in history.diagnostics.codes()
        assert (tmp_path / "history.json.corrupt").exists()
        # the slate is clean: a store round-trips through a fresh file
        history.store(KEY, "fft.mixed")
        assert SelectionHistory(path).lookup(KEY) == "fft.mixed"

    def test_truncated_file_quarantined(self, tmp_path):
        path = tmp_path / "history.json"
        full = json.dumps({"schema": SCHEMA_VERSION,
                           "entries": {KEY.to_str(): "fft.radix2"}})
        path.write_text(full[: len(full) // 2])
        history = SelectionHistory(path)
        assert len(history) == 0
        assert "HCG301" in history.diagnostics.codes()

    def test_legacy_flat_schema_quarantined(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text(json.dumps({KEY.to_str(): "fft.radix2"}))  # schema-1 layout
        history = SelectionHistory(path)
        assert len(history) == 0
        assert "HCG303" in history.diagnostics.codes()
        assert (tmp_path / "history.json.corrupt").exists()

    def test_future_schema_quarantined(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text(json.dumps({"schema": 99, "entries": {}}))
        history = SelectionHistory(path)
        assert "HCG303" in history.diagnostics.codes()

    def test_non_object_payload_quarantined(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text(json.dumps([1, 2, 3]))
        history = SelectionHistory(path)
        assert len(history) == 0
        assert "HCG303" in history.diagnostics.codes()


class TestEntryRecovery:
    def test_bad_entries_skipped_good_entries_kept(self, tmp_path):
        path = tmp_path / "history.json"
        path.write_text(json.dumps({
            "schema": SCHEMA_VERSION,
            "entries": {
                KEY.to_str(): "fft.radix2",
                "no pipes here": "fft.mixed",
                "fft|not_a_dtype|n=8": "fft.mixed",
                "fft|f32|n=eight": "fft.mixed",
                "dct|f64|": 42,
            },
        }))
        history = SelectionHistory(path)
        assert len(history) == 1
        assert history.lookup(KEY) == "fft.radix2"
        codes = history.diagnostics.codes()
        assert codes.count("HCG302") == 4

    def test_malformed_key_raises_history_error_directly(self):
        for text in ("", "a|b", "a|b|c|d", "fft|f32|n=x", "fft|voidptr|"):
            with pytest.raises(HistoryError):
                SelectionKey.from_str(text)

    def test_generator_surfaces_history_diagnostics(self, tmp_path):
        """Load-time recoveries end up on the generation run's report."""
        from repro.codegen import HcgGenerator
        from repro.dtypes import DataType as DT
        from repro.model.builder import ModelBuilder

        path = tmp_path / "history.json"
        path.write_text("garbage")
        b = ModelBuilder("m", default_dtype=DT.I32)
        x = b.inport("x", shape=8)
        b.outport("o", b.add_actor("Add", "s", x, x))
        generator = HcgGenerator(
            ARM_A72, history=SelectionHistory(path), policy="strict"
        )
        generator.generate(b.build())  # warning only: strict must not raise
        assert "HCG301" in generator.last_diagnostics.codes()


class TestStaleEntries:
    def _synth(self, history):
        return IntensiveSynthesizer(
            default_library(), ARM_A72.cost, ARM_A72.instruction_set, history,
            DiagnosticsCollector("permissive"),
        )

    def test_stale_kernel_id_dropped_and_reselected(self):
        history = SelectionHistory()
        history.store(KEY, "fft.retired_in_v2")  # not in the library
        synth = self._synth(history)
        actor = create_actor("fft", "FFT", DataType.F32, {"n": 16})
        kernel = synth.select(actor)
        assert default_library().has_id(kernel.kernel_id)
        assert "HCG204" in synth.diagnostics.codes()
        # the stale entry was replaced by the fresh decision
        assert history.lookup(KEY) == kernel.kernel_id

    def test_prune_stale(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        history.store(KEY, "fft.radix2")
        history.store(SelectionKey("dct", DataType.F32, ()), "dct.retired")
        stale = history.prune_stale(default_library().kernel_ids())
        assert [k.actor_key for k in stale] == ["dct"]
        assert len(history) == 1
        assert len(SelectionHistory(path)) == 1  # persisted

    def test_drop_persists(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        history.store(KEY, "fft.radix2")
        history.drop(KEY)
        assert len(SelectionHistory(path)) == 0
