"""Fault-injection harness: the pipeline degrades, it does not die.

Each test breaks one layer on purpose — a kernel that raises during
Algorithm 1's pre-calculation, an Algorithm 2 mapping that cannot place
a single instruction, a corrupted history file on disk — and asserts
that

* permissive mode completes, records a diagnostic with a stable code,
  and the generated program still matches the scalar reference
  numerically;
* strict mode raises ``CodegenError`` carrying the same diagnostics.
"""

import json

import numpy as np
import pytest

from repro.arch import ARM_A72
from repro.codegen import HcgGenerator, SimulinkCoderGenerator
from repro.codegen.hcg import batch as batch_module
from repro.diagnostics import DiagnosticsCollector, Severity
from repro.dtypes import DataType
from repro.errors import CodegenError
from repro.ir import SimdOp, walk
from repro.kernels.library import build_default_library
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm import Machine


def _mixed_model(n=16):
    """Batch chain + an intensive FFT actor, i.e. both algorithms run."""
    b = ModelBuilder("mix", default_dtype=DataType.F32)
    x = b.inport("x", shape=n)
    y = b.inport("y", shape=n)
    m = b.add_actor("Mul", "m", x, y)
    a = b.add_actor("Add", "a", m, x)
    b.outport("o", a)
    spectrum = b.add_actor("FFT", "fft", x, n=n)
    b.outport("s", spectrum)
    return b.build()


def _batch_model(n=16, dtype=DataType.I32):
    b = ModelBuilder("chain", default_dtype=dtype)
    x = b.inport("x", shape=n)
    y = b.inport("y", shape=n)
    m = b.add_actor("Mul", "m", x, y)
    a = b.add_actor("Add", "a", m, x)
    b.outport("o", a)
    return b.build()


def _inputs(model, seed=11):
    rng = np.random.default_rng(seed)
    inputs = {}
    for inport in model.inports:
        port = inport.output("out")
        if port.dtype.is_float:
            data = rng.uniform(-2, 2, size=port.shape or ())
        else:
            data = rng.integers(-99, 99, size=port.shape or ())
        inputs[inport.name] = data.astype(port.dtype.numpy_dtype)
    return inputs


def _break_all_kernels(library, actor_key, monkeypatch):
    """Make every implementation of one actor key raise on measurement."""

    def boom(*args, **kwargs):
        raise RuntimeError("injected kernel fault")

    for impl in library.implementations(actor_key):
        monkeypatch.setattr(impl, "measure_cycles", boom)


class TestIntensiveFaults:
    def test_permissive_degrades_to_general_implementation(self, monkeypatch):
        library = build_default_library()
        _break_all_kernels(library, "fft", monkeypatch)
        model = _mixed_model()

        generator = HcgGenerator(ARM_A72, library=library, policy="permissive")
        program = generator.generate(model)

        codes = generator.last_diagnostics.codes()
        assert "HCG203" in codes  # degraded to the general implementation
        assert "HCG202" in codes  # each faulted candidate recorded
        # the degraded fallback is never cached as a real decision
        assert len(generator.history) == 0

        # output must still match the scalar baseline bit-for-bit: both
        # now call the same general kernel on the same inputs
        reference = SimulinkCoderGenerator(ARM_A72).generate(model)
        inputs = _inputs(model)
        got = Machine(program, ARM_A72).run(inputs).outputs
        want = Machine(reference, ARM_A72).run(inputs).outputs
        for name, value in want.items():
            assert np.array_equal(got[name], value), name

    def test_strict_raises_with_diagnostics(self, monkeypatch):
        library = build_default_library()
        _break_all_kernels(library, "fft", monkeypatch)
        generator = HcgGenerator(ARM_A72, library=library, policy="strict")
        with pytest.raises(CodegenError) as excinfo:
            generator.generate(_mixed_model())
        diagnostics = excinfo.value.diagnostics
        assert any(d.code == "HCG203" for d in diagnostics)
        assert any(d.severity is Severity.ERROR for d in diagnostics)

    def test_one_broken_candidate_is_only_a_warning(self, monkeypatch):
        """A single faulty implementation must not abort selection — the
        surviving candidates still compete (the satellite bugfix)."""
        library = build_default_library()
        victims = [
            impl for impl in library.implementations("fft") if not impl.general
        ]

        def boom(*args, **kwargs):
            raise ZeroDivisionError("injected")

        monkeypatch.setattr(victims[0], "measure_cycles", boom)
        generator = HcgGenerator(ARM_A72, library=library, policy="strict")
        program = generator.generate(_mixed_model())  # must not raise
        codes = generator.last_diagnostics.codes()
        assert "HCG202" in codes and "HCG203" not in codes
        record = generator.last_intensive.records[-1]
        assert record.faulted == [victims[0].kernel_id]
        assert record.measured  # others were still measured
        assert program is not None



def _no_match_matcher(monkeypatch):
    class _NoMatchMatcher:
        enumerated = 0

        def match_from(self, seed, mapped):
            return None

        def invalidate(self, members):
            return 0

        def flush_counters(self):
            pass

    monkeypatch.setattr(batch_module, "make_matcher",
                        lambda *args, **kwargs: _NoMatchMatcher())


class TestBatchFaults:
    def test_unmappable_group_demotes_to_scalar(self, monkeypatch):
        _no_match_matcher(monkeypatch)
        model = _batch_model()
        generator = HcgGenerator(ARM_A72, policy="permissive")
        program = generator.generate(model)

        assert "HCG201" in generator.last_diagnostics.codes()
        assert not any(isinstance(s, SimdOp) for s in walk(program.body))

        inputs = _inputs(model)
        reference = ModelEvaluator(model).step(inputs)
        got = Machine(program, ARM_A72).run(inputs).outputs
        for name, value in reference.items():
            assert np.array_equal(got[name].reshape(value.shape), value), name

    def test_unmappable_group_strict_raises(self, monkeypatch):
        _no_match_matcher(monkeypatch)
        generator = HcgGenerator(ARM_A72, policy="strict")
        with pytest.raises(CodegenError) as excinfo:
            generator.generate(_batch_model())
        assert any(d.code == "HCG201" for d in excinfo.value.diagnostics)

    def test_rollback_leaves_no_partial_state(self, monkeypatch):
        """The failed SIMD attempt's buffers/aliases are rolled back, so
        the fallback emits from a clean context and the C still emits."""
        _no_match_matcher(monkeypatch)
        generator = HcgGenerator(ARM_A72, policy="permissive")
        program = generator.generate(_batch_model())
        names = [b.name for b in program.buffers]
        assert len(names) == len(set(names))  # no duplicate declarations
        from repro.ir.cemit import emit_c

        assert "void" in emit_c(program, ARM_A72.instruction_set)

    def test_mapping_exception_also_demotes(self, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("injected matcher crash")

        monkeypatch.setattr(batch_module, "make_matcher", explode)
        generator = HcgGenerator(ARM_A72, policy="permissive")
        model = _batch_model()
        program = generator.generate(model)
        assert "HCG201" in generator.last_diagnostics.codes()
        inputs = _inputs(model)
        reference = ModelEvaluator(model).step(inputs)
        got = Machine(program, ARM_A72).run(inputs).outputs
        for name, value in reference.items():
            assert np.array_equal(got[name].reshape(value.shape), value), name


class TestAcceptance:
    """The ISSUE's acceptance scenario: broken kernel + corrupt history."""

    def test_permissive_survives_kernel_fault_and_corrupt_history(
        self, monkeypatch, tmp_path
    ):
        history_path = tmp_path / "history.json"
        history_path.write_text('{"schema": 2, "entries": {"fft|f32|')  # truncated

        library = build_default_library()
        _break_all_kernels(library, "fft", monkeypatch)
        from repro.codegen.hcg.history import SelectionHistory

        generator = HcgGenerator(
            ARM_A72,
            library=library,
            history=SelectionHistory(history_path),
            policy="permissive",
        )
        model = _mixed_model()
        program = generator.generate(model)

        codes = generator.last_diagnostics.codes()
        assert "HCG301" in codes  # corrupt history quarantined
        assert "HCG203" in codes  # kernel fault degraded
        assert (tmp_path / "history.json.corrupt").exists()

        inputs = _inputs(model)
        reference = SimulinkCoderGenerator(ARM_A72).generate(model)
        got = Machine(program, ARM_A72).run(inputs).outputs
        want = Machine(reference, ARM_A72).run(inputs).outputs
        for name, value in want.items():
            assert np.array_equal(got[name], value), name  # bit-for-bit

    def test_strict_raises_with_the_same_diagnostics(self, monkeypatch, tmp_path):
        history_path = tmp_path / "history.json"
        history_path.write_text("not json at all {{{")

        library = build_default_library()
        _break_all_kernels(library, "fft", monkeypatch)
        from repro.codegen.hcg.history import SelectionHistory

        generator = HcgGenerator(
            ARM_A72,
            library=library,
            history=SelectionHistory(history_path),
            policy="strict",
        )
        with pytest.raises(CodegenError) as excinfo:
            generator.generate(_mixed_model())
        codes = {d.code for d in excinfo.value.diagnostics}
        assert "HCG301" in codes and "HCG203" in codes


class TestMalformedIsa:
    def test_malformed_isa_entries_rejected_cleanly(self):
        from repro.errors import IsaError
        from repro.isa import parse_instruction_set

        bad_entries = [
            "arch: x\nvector_bits: 128\nIns: v ; Graph: ; Code: O1 = v(I1)",
            "arch: x\nvector_bits: 128\nIns: v ; Graph: Add,q99,4,T1,I1,I2,O1 ; Code: O1 = v(I1, I2)",
            "arch: x\nvector_bits: nope\n",
        ]
        for text in bad_entries:
            with pytest.raises(IsaError):
                parse_instruction_set(text)

    def test_isa_without_needed_ops_generates_scalar(self):
        """An ISA missing the group's ops is a planned fallback, not a
        fault: dispatch never forms the group and the output is scalar."""
        from repro.isa import load_builtin
        from repro.isa.spec import InstructionSet

        neon = load_builtin("neon")
        gutted = InstructionSet(
            "neon", 128,
            tuple(i for i in neon.instructions if i.root.op not in ("Mul", "Add")),
        )
        model = _batch_model()
        generator = HcgGenerator(ARM_A72, instruction_set=gutted, policy="strict")
        program = generator.generate(model)  # strict: still no fault
        assert not any(isinstance(s, SimdOp) for s in walk(program.body))
        inputs = _inputs(model)
        reference = ModelEvaluator(model).step(inputs)
        got = Machine(program, ARM_A72, instruction_set=gutted).run(inputs).outputs
        for name, value in reference.items():
            assert np.array_equal(got[name].reshape(value.shape), value), name


class TestCollector:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DiagnosticsCollector("lenient")
        with pytest.raises(ValueError):
            HcgGenerator(ARM_A72, policy="lenient")

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            DiagnosticsCollector("permissive").report("HCG999", "nope")

    def test_summary_table_lists_counts(self):
        collector = DiagnosticsCollector("permissive")
        collector.report("HCG201", "group demoted", actor="a, b")
        collector.report("HCG302", "bad entry")
        table = collector.summary_table()
        assert "HCG201" in table and "HCG302" in table
        assert "1 error" in table and "1 warning" in table

    def test_clean_run_has_no_diagnostics(self):
        generator = HcgGenerator(ARM_A72, policy="strict")
        generator.generate(_batch_model())
        assert len(generator.last_diagnostics) == 0
