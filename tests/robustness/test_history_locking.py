"""Concurrency safety of the file-backed selection history.

Two tool invocations sharing one ``--history`` file must not clobber
each other's pre-calculated decisions: saves merge under an advisory
``flock`` on a ``<name>.lock`` sidecar, drops stay dropped, and lock
contention degrades to unlocked last-writer-wins with HCG304 instead
of blocking generation.

The ``TestThreadStress`` / ``TestProcessStress`` classes are the
stress companion: the mechanics tests above prove the merge/lock
protocol on two cooperating instances, the stress tests prove the
invariants under real concurrency — no store lost across threads or
processes, and deliberate drops never resurrected by a racing
writer's save-time merge.
"""

import fcntl
import json
import multiprocessing
import os
import threading

import pytest

from repro.codegen.hcg.history import LOCK_TIMEOUT, SelectionHistory, SelectionKey
from repro.dtypes import DataType


def key(name):
    return SelectionKey(name, DataType.F32, (("n", 64),))


def entries_on_disk(path):
    return json.loads(path.read_text())["entries"]


class TestSaveMerge:
    def test_two_writers_both_keep_their_entries(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        b = SelectionHistory(path)
        a.store(key("fir"), "fir_neon_v1")
        b.store(key("fft"), "fft_neon_v1")
        # b's save merged a's entry from disk instead of clobbering it
        assert len(entries_on_disk(path)) == 2
        fresh = SelectionHistory(path)
        assert fresh.lookup(key("fir")) == "fir_neon_v1"
        assert fresh.lookup(key("fft")) == "fft_neon_v1"

    def test_in_memory_entry_wins_on_conflict(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        b = SelectionHistory(path)
        a.store(key("fir"), "fir_old")
        b.store(key("fir"), "fir_new")
        assert entries_on_disk(path)[key("fir").to_str()] == "fir_new"

    def test_drop_is_not_resurrected_by_merge(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        a.store(key("fir"), "fir_neon_v1")
        a.store(key("fft"), "fft_neon_v1")
        b = SelectionHistory(path)  # sees both entries
        b.drop(key("fir"))
        # b's save must NOT re-adopt the dropped key from disk
        assert list(entries_on_disk(path)) == [key("fft").to_str()]

    def test_prune_stale_survives_merge(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        a.store(key("fir"), "fir_neon_v1")
        a.store(key("fft"), "fft_neon_v1")
        b = SelectionHistory(path)
        stale = b.prune_stale({"fft_neon_v1"})
        assert stale == (key("fir"),)
        assert list(entries_on_disk(path)) == [key("fft").to_str()]

    def test_restore_after_drop_persists(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        history.store(key("fir"), "v1")
        history.drop(key("fir"))
        history.store(key("fir"), "v2")
        assert entries_on_disk(path)[key("fir").to_str()] == "v2"


class TestLockContention:
    def hold_lock(self, path):
        """Grab the sidecar lock the way a concurrent process would."""
        lock_path = path.with_name(path.name + ".lock")
        fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
        return fd

    def test_contended_save_degrades_with_hcg304(self, tmp_path):
        path = tmp_path / "history.json"
        fd = self.hold_lock(path)
        try:
            history = SelectionHistory(lock_timeout=0.05)
            history.store(key("fir"), "fir_neon_v1")
            history.save(path)
            codes = [d.code for d in history.diagnostics]
            assert "HCG304" in codes
            assert any("contention" in d.message for d in history.diagnostics)
            # the write still happened, unlocked
            assert key("fir").to_str() in entries_on_disk(path)
        finally:
            os.close(fd)

    def test_uncontended_save_reports_nothing(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path, lock_timeout=0.05)
        history.store(key("fir"), "fir_neon_v1")
        assert len(history.diagnostics) == 0

    def test_lock_released_after_save(self, tmp_path):
        path = tmp_path / "history.json"
        SelectionHistory(path).store(key("fir"), "v1")
        # if the save leaked its lock, this non-blocking grab would fail
        fd = os.open(str(path) + ".lock", os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        finally:
            os.close(fd)

    def test_default_timeout_is_generous(self):
        assert SelectionHistory().lock_timeout == LOCK_TIMEOUT == 5.0


THREADS = 8
PROCESSES = 4
KEYS_PER_WRITER = 12


def stress_key(writer, index):
    return SelectionKey(f"writer{writer}_actor{index}", DataType.F32,
                        (("n", 64),))


def process_writer(path_text, writer):
    """One process's workload: open the shared file, store its keys."""
    history = SelectionHistory(path_text)
    for index in range(KEYS_PER_WRITER):
        history.store(stress_key(writer, index), f"kernel_{writer}_{index}")


class TestThreadStress:
    def test_no_store_is_lost_across_threads(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        errors = []

        def worker(writer):
            try:
                for index in range(KEYS_PER_WRITER):
                    history.store(stress_key(writer, index),
                                  f"kernel_{writer}_{index}")
                    # interleave reads to exercise lookup under mutation
                    assert history.lookup(stress_key(writer, index)) == \
                        f"kernel_{writer}_{index}"
            except Exception as exc:  # fault-isolation: collect, don't die silently
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(history) == THREADS * KEYS_PER_WRITER
        # and the file-backed copy saw every store too
        disk = entries_on_disk(path)
        assert len(disk) == THREADS * KEYS_PER_WRITER
        for writer in range(THREADS):
            for index in range(KEYS_PER_WRITER):
                assert disk[stress_key(writer, index).to_str()] == \
                    f"kernel_{writer}_{index}"

    def test_threads_sharing_separate_instances_merge_on_disk(self, tmp_path):
        """Each thread gets its OWN instance of the same file: the fcntl
        sidecar + save-time merge is the only thing preventing loss."""
        path = tmp_path / "history.json"
        errors = []

        def worker(writer):
            try:
                history = SelectionHistory(path)
                for index in range(KEYS_PER_WRITER):
                    history.store(stress_key(writer, index),
                                  f"kernel_{writer}_{index}")
            except Exception as exc:  # fault-isolation: collect, don't die silently
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(entries_on_disk(path)) == THREADS * KEYS_PER_WRITER


class TestProcessStress:
    @pytest.fixture
    def context(self):
        # fork keeps the workload function picklable-free and fast;
        # fall back to spawn where fork is unavailable
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            return multiprocessing.get_context("spawn")

    def test_no_store_is_lost_across_processes(self, tmp_path, context):
        path = tmp_path / "history.json"
        workers = [
            context.Process(target=process_writer, args=(str(path), writer))
            for writer in range(PROCESSES)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)
        disk = entries_on_disk(path)
        assert len(disk) == PROCESSES * KEYS_PER_WRITER
        for writer in range(PROCESSES):
            for index in range(KEYS_PER_WRITER):
                assert disk[stress_key(writer, index).to_str()] == \
                    f"kernel_{writer}_{index}"
        # a fresh reader agrees with the raw file
        fresh = SelectionHistory(path)
        assert len(fresh) == PROCESSES * KEYS_PER_WRITER

    def test_drops_survive_a_concurrent_write_storm(self, tmp_path, context):
        path = tmp_path / "history.json"
        # seed the file, then drop half the seeded keys
        seeded = SelectionHistory(path)
        for index in range(KEYS_PER_WRITER):
            seeded.store(stress_key("seed", index), f"kernel_seed_{index}")
        dropped = [stress_key("seed", index)
                   for index in range(0, KEYS_PER_WRITER, 2)]
        for dropped_key in dropped:
            seeded.drop(dropped_key)
        # now a storm of fresh writers (which never saw the dropped keys)
        # races new stores against the dropper's continued saves
        workers = [
            context.Process(target=process_writer, args=(str(path), writer))
            for writer in range(PROCESSES)
        ]
        for worker in workers:
            worker.start()
        # the dropper keeps re-saving concurrently, exercising its
        # _dropped exclusion against the storm
        for _ in range(10):
            seeded.save(path)
        for worker in workers:
            worker.join(timeout=120)
        assert all(worker.exitcode == 0 for worker in workers)
        disk = entries_on_disk(path)
        for dropped_key in dropped:
            assert dropped_key.to_str() not in disk  # never resurrected
        kept = list(range(1, KEYS_PER_WRITER, 2))
        for index in kept:
            assert disk[stress_key("seed", index).to_str()] == \
                f"kernel_seed_{index}"
        assert len(disk) == len(kept) + PROCESSES * KEYS_PER_WRITER
