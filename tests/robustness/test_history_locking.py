"""Concurrency safety of the file-backed selection history.

Two tool invocations sharing one ``--history`` file must not clobber
each other's pre-calculated decisions: saves merge under an advisory
``flock`` on a ``<name>.lock`` sidecar, drops stay dropped, and lock
contention degrades to unlocked last-writer-wins with HCG304 instead
of blocking generation.
"""

import fcntl
import json
import os

from repro.codegen.hcg.history import LOCK_TIMEOUT, SelectionHistory, SelectionKey
from repro.dtypes import DataType


def key(name):
    return SelectionKey(name, DataType.F32, (("n", 64),))


def entries_on_disk(path):
    return json.loads(path.read_text())["entries"]


class TestSaveMerge:
    def test_two_writers_both_keep_their_entries(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        b = SelectionHistory(path)
        a.store(key("fir"), "fir_neon_v1")
        b.store(key("fft"), "fft_neon_v1")
        # b's save merged a's entry from disk instead of clobbering it
        assert len(entries_on_disk(path)) == 2
        fresh = SelectionHistory(path)
        assert fresh.lookup(key("fir")) == "fir_neon_v1"
        assert fresh.lookup(key("fft")) == "fft_neon_v1"

    def test_in_memory_entry_wins_on_conflict(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        b = SelectionHistory(path)
        a.store(key("fir"), "fir_old")
        b.store(key("fir"), "fir_new")
        assert entries_on_disk(path)[key("fir").to_str()] == "fir_new"

    def test_drop_is_not_resurrected_by_merge(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        a.store(key("fir"), "fir_neon_v1")
        a.store(key("fft"), "fft_neon_v1")
        b = SelectionHistory(path)  # sees both entries
        b.drop(key("fir"))
        # b's save must NOT re-adopt the dropped key from disk
        assert list(entries_on_disk(path)) == [key("fft").to_str()]

    def test_prune_stale_survives_merge(self, tmp_path):
        path = tmp_path / "history.json"
        a = SelectionHistory(path)
        a.store(key("fir"), "fir_neon_v1")
        a.store(key("fft"), "fft_neon_v1")
        b = SelectionHistory(path)
        stale = b.prune_stale({"fft_neon_v1"})
        assert stale == (key("fir"),)
        assert list(entries_on_disk(path)) == [key("fft").to_str()]

    def test_restore_after_drop_persists(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path)
        history.store(key("fir"), "v1")
        history.drop(key("fir"))
        history.store(key("fir"), "v2")
        assert entries_on_disk(path)[key("fir").to_str()] == "v2"


class TestLockContention:
    def hold_lock(self, path):
        """Grab the sidecar lock the way a concurrent process would."""
        lock_path = path.with_name(path.name + ".lock")
        fd = os.open(str(lock_path), os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
        return fd

    def test_contended_save_degrades_with_hcg304(self, tmp_path):
        path = tmp_path / "history.json"
        fd = self.hold_lock(path)
        try:
            history = SelectionHistory(lock_timeout=0.05)
            history.store(key("fir"), "fir_neon_v1")
            history.save(path)
            codes = [d.code for d in history.diagnostics]
            assert "HCG304" in codes
            assert any("contention" in d.message for d in history.diagnostics)
            # the write still happened, unlocked
            assert key("fir").to_str() in entries_on_disk(path)
        finally:
            os.close(fd)

    def test_uncontended_save_reports_nothing(self, tmp_path):
        path = tmp_path / "history.json"
        history = SelectionHistory(path, lock_timeout=0.05)
        history.store(key("fir"), "fir_neon_v1")
        assert len(history.diagnostics) == 0

    def test_lock_released_after_save(self, tmp_path):
        path = tmp_path / "history.json"
        SelectionHistory(path).store(key("fir"), "v1")
        # if the save leaked its lock, this non-blocking grab would fail
        fd = os.open(str(path) + ".lock", os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        finally:
            os.close(fd)

    def test_default_timeout_is_generous(self):
        assert SelectionHistory().lock_timeout == LOCK_TIMEOUT == 5.0
