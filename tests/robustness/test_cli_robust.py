"""CLI policy flags: --strict / --permissive and the diagnostics table."""

import pytest

from repro.cli import main
from repro.codegen.hcg import batch as batch_module
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.model.xml_io import write_model


@pytest.fixture
def model_file(tmp_path):
    b = ModelBuilder("cli_model", default_dtype=DataType.I32)
    x = b.inport("x", shape=16)
    y = b.inport("y", shape=16)
    m = b.add_actor("Mul", "m", x, y)
    a = b.add_actor("Add", "a", m, x)
    b.outport("o", a)
    path = tmp_path / "model.xml"
    write_model(b.build(), path)
    return str(path)


@pytest.fixture
def broken_mapper(monkeypatch):
    class _NoMatchMatcher:
        enumerated = 0

        def match_from(self, seed, mapped):
            return None

        def invalidate(self, members):
            return 0

        def flush_counters(self):
            pass

    monkeypatch.setattr(batch_module, "make_matcher",
                        lambda *args, **kwargs: _NoMatchMatcher())


class TestPolicyFlags:
    def test_default_strict_fails_on_fault(self, model_file, broken_mapper, capsys):
        assert main(["generate", model_file]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "HCG201" in err

    def test_permissive_degrades_and_succeeds(self, model_file, broken_mapper, capsys):
        assert main(["generate", model_file, "--permissive"]) == 0
        captured = capsys.readouterr()
        assert "HCG201" in captured.err       # summary table on stderr
        assert "void cli_model_step" in captured.out  # C still produced
        assert "vmlaq_s32" not in captured.out        # degraded: no SIMD

    def test_flags_are_mutually_exclusive(self, model_file):
        with pytest.raises(SystemExit):
            main(["generate", model_file, "--strict", "--permissive"])

    def test_clean_run_prints_no_diagnostics(self, model_file, capsys):
        assert main(["generate", model_file, "--strict"]) == 0
        assert "HCG" not in capsys.readouterr().err

    def test_run_command_accepts_policy(self, model_file, broken_mapper, capsys):
        assert main(["run", model_file, "--permissive"]) == 0
        captured = capsys.readouterr()
        assert "HCG201" in captured.err
        assert "modelled cycles/step" in captured.out
