"""Property-based round-trips for the selection history.

``SelectionKey.to_str``/``from_str`` and ``SelectionHistory.save``/
``load`` must be inverse for every representable key — including keys
whose size signature is empty — so a persisted cache is always
re-readable by a later invocation.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.hcg.history import SelectionHistory, SelectionKey
from repro.dtypes import DataType

#: characters legal in actor keys / size names (the key format reserves
#: '|', '=' and ',' as separators)
_NAME_ALPHABET = string.ascii_lowercase + string.digits + "._-"

actor_keys = st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=24)
size_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
sizes = st.lists(
    st.tuples(size_names, st.integers(min_value=0, max_value=2**31 - 1)),
    min_size=0,   # the empty size signature is explicitly in scope
    max_size=4,
    unique_by=lambda kv: kv[0],
).map(tuple)
dtypes = st.sampled_from(list(DataType))

selection_keys = st.builds(SelectionKey, actor_keys, dtypes, sizes)
kernel_ids = st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=32)


class TestKeyRoundTrip:
    @given(key=selection_keys)
    def test_to_str_from_str_is_identity(self, key):
        assert SelectionKey.from_str(key.to_str()) == key

    def test_empty_size_signature_round_trips(self):
        key = SelectionKey("fft", DataType.F32, ())
        assert SelectionKey.from_str(key.to_str()) == key

    @given(key=selection_keys)
    def test_to_str_is_injective_on_parse(self, key):
        """Parsing never conflates distinct fields (separators are
        excluded from the alphabets)."""
        parsed = SelectionKey.from_str(key.to_str())
        assert parsed.actor_key == key.actor_key
        assert parsed.dtype is key.dtype
        assert parsed.size == key.size


class TestHistoryRoundTrip:
    @settings(max_examples=30)
    @given(entries=st.dictionaries(selection_keys, kernel_ids, max_size=8))
    def test_save_load_round_trip(self, entries, tmp_path_factory):
        path = tmp_path_factory.mktemp("hist") / "history.json"
        history = SelectionHistory()
        for key, kernel_id in entries.items():
            history.store(key, kernel_id)
        history.save(path)

        reloaded = SelectionHistory(path)
        assert len(reloaded) == len(entries)
        for key, kernel_id in entries.items():
            assert reloaded.lookup(key) == kernel_id
        assert len(reloaded.diagnostics) == 0  # nothing was recovered

    @settings(max_examples=20)
    @given(entries=st.dictionaries(selection_keys, kernel_ids, max_size=6))
    def test_double_save_is_idempotent(self, entries, tmp_path_factory):
        path = tmp_path_factory.mktemp("hist") / "history.json"
        history = SelectionHistory()
        for key, kernel_id in entries.items():
            history.store(key, kernel_id)
        history.save(path)
        first = path.read_text()
        history.save(path)
        assert path.read_text() == first
