"""The adversarial input battery: coverage, determinism, dtype safety."""

import numpy as np
import pytest

from repro.dtypes import DataType
from repro.verify.case import ModelSpec
from repro.verify.fuzz import residue_sweep_specs
from repro.verify.inputs import has_intensive, input_battery


def elementwise_model(dtype="f32", width=11):
    return ModelSpec(
        name="m", dtype=dtype, width=width,
        nodes=(
            {"kind": "in", "name": "in0"},
            {"kind": "in", "name": "in1"},
            {"kind": "op", "name": "n0", "op": "Add", "args": ["in0", "in1"]},
        ),
    ).build()


def switch_model(dtype="i16", width=6):
    return ModelSpec(
        name="sw", dtype=dtype, width=width,
        nodes=(
            {"kind": "in", "name": "in0"},
            {"kind": "in", "name": "in1"},
            {"kind": "switch", "name": "s0", "in1": "in0", "in2": "in1",
             "threshold": 1},
        ),
    ).build()


def intensive_model():
    return ModelSpec(
        name="fftm", dtype="f32", width=8,
        nodes=(
            {"kind": "in", "name": "in0"},
            {"kind": "intensive", "name": "k0", "op": "FFT", "arg": "in0"},
        ),
    ).build()


class TestBatteryComposition:
    def test_float_model_gets_all_adversarial_cases(self):
        names = [c.name for c in input_battery(elementwise_model())]
        assert names == ["zeros", "ones", "random", "random_wide",
                         "boundary", "special"]

    def test_integer_model_has_no_special_case(self):
        names = [c.name for c in input_battery(elementwise_model("i32"))]
        assert "special" not in names
        assert "boundary" in names

    def test_intensive_model_only_moderate_cases(self):
        model = intensive_model()
        assert has_intensive(model)
        names = [c.name for c in input_battery(model)]
        assert names == ["zeros", "ones", "random"]

    def test_switch_ctrl_cases_present(self):
        names = [c.name for c in input_battery(switch_model())]
        assert "ctrl_low" in names and "ctrl_high" in names

    def test_every_case_covers_every_inport_and_step(self):
        model = switch_model()
        inports = {a.name for a in model.inports}
        for case in input_battery(model, steps=3):
            assert len(case.steps) == 3
            for step in case.steps:
                assert set(step) == inports


class TestBatteryValues:
    def test_deterministic_in_seed(self):
        model = elementwise_model()
        a = input_battery(model, seed=7)
        b = input_battery(model, seed=7)
        for case_a, case_b in zip(a, b):
            for step_a, step_b in zip(case_a.steps, case_b.steps):
                for name in step_a:
                    np.testing.assert_array_equal(step_a[name], step_b[name])

    def test_values_match_inport_dtype_and_shape(self):
        model = switch_model("u8")
        for case in input_battery(model):
            for step in case.steps:
                for actor in model.inports:
                    port = actor.output("out")
                    value = step[actor.name]
                    assert value.dtype == port.dtype.numpy_dtype
                    assert value.shape == tuple(port.shape or ())

    def test_special_case_contains_nan_and_inf(self):
        model = elementwise_model("f64", width=16)
        special = next(c for c in input_battery(model) if c.name == "special")
        values = special.steps[0]["in0"]
        assert np.isnan(values).any()
        assert np.isinf(values).any()

    def test_boundary_case_hits_integer_extremes(self):
        model = elementwise_model("i8", width=16)
        boundary = next(c for c in input_battery(model) if c.name == "boundary")
        values = boundary.steps[0]["in0"]
        assert values.min() == np.iinfo(np.int8).min
        assert values.max() == np.iinfo(np.int8).max

    @pytest.mark.parametrize("dtype", ["i8", "u8", "i16", "u16", "i32",
                                       "u32", "i64", "u64"])
    def test_wide_random_never_overflows_construction(self, dtype):
        # uint64/int64 extremes crash naive rng.integers usage; the
        # battery must construct values for every dtype without raising.
        model = switch_model(dtype)
        for case in input_battery(model):
            for step in case.steps:
                for value in step.values():
                    assert np.asarray(value).dtype == DataType.from_name(
                        dtype).numpy_dtype


class TestResidueCoverage:
    def test_sweep_covers_every_residue(self):
        specs = residue_sweep_specs(128)
        residues = {}
        for spec in specs:
            dtype = DataType.from_name(spec.dtype)
            lanes = 128 // dtype.bit_width
            residues.setdefault(spec.dtype, set()).add(spec.width % lanes)
        assert residues["f32"] == set(range(4))
        assert residues["i16"] == set(range(8))
