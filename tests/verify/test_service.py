"""The verification session: phases, quarantine, diagnostics."""

import json

from repro.bench.models import fir_model
from repro.verify import faults
from repro.verify.case import load_case
from repro.verify.service import DEFAULT_ARCHS, SessionResult, run_session


class TestCleanSession:
    def test_named_models_on_one_arch(self):
        result = run_session(models={"FIR": fir_model(n=64)},
                             archs=("arm_a72",))
        assert result.ok
        assert len(result.reports) == 1
        assert "all consistent" in result.summary()

    def test_fuzz_cases_counted(self):
        result = run_session(models={}, archs=("arm_a72",), fuzz=6, seed=0)
        assert result.fuzz_count == 6
        assert result.ok

    def test_corpus_replay(self, tmp_path):
        from repro.verify.case import ReproCase
        from repro.verify.fuzz import residue_sweep_specs

        spec = residue_sweep_specs(128)[0]
        ReproCase(spec=spec, arch="arm_a72", seed=0,
                  generators=("simulink_coder", "dfsynth", "hcg")
                  ).save(tmp_path)
        result = run_session(models={}, archs=("arm_a72",), corpus=tmp_path)
        assert result.corpus_count == 1 and result.ok

    def test_default_archs_cover_all_five_presets(self):
        assert DEFAULT_ARCHS == ("arm_a72", "intel_i7_8700_sse4",
                                 "intel_i7_8700", "riscv_u74",
                                 "intel_xeon_8380")


class TestFailingSession:
    def test_fault_is_quarantined_minimized_and_replayable(self, tmp_path):
        faults.install("skip_remainder")
        result = run_session(models={}, archs=("arm_a72",), fuzz=8, seed=0,
                             quarantine=tmp_path / "q", shrink_budget=80)
        assert not result.ok
        assert result.quarantined, "at least one fuzz case hits a remainder"
        assert "HCG404" in result.diagnostics.codes()

        path = result.quarantined[0]
        payload = json.loads(path.read_text())
        assert payload["kind"] == "REPRO_verify"
        assert payload["faults"] == ["skip_remainder"]

        case = load_case(path)
        assert case.spec.actor_count <= 5, "shrinker must minimize"
        faults.clear()
        # the case re-arms its own recorded faults during replay
        assert not case.replay().ok

    def test_corpus_regression_is_quarantined(self, tmp_path):
        from repro.verify.case import ReproCase
        from repro.verify.fuzz import residue_sweep_specs

        spec = residue_sweep_specs(128)[2]  # width 10: has a remainder
        ReproCase(spec=spec, arch="arm_a72", seed=0,
                  generators=("hcg",), faults=("skip_remainder",)
                  ).save(tmp_path / "corpus")
        result = run_session(models={}, archs=("arm_a72",),
                             corpus=tmp_path / "corpus",
                             quarantine=tmp_path / "q")
        assert not result.ok
        assert result.quarantined


class TestSessionResult:
    def test_summary_lists_failures_and_paths(self, tmp_path):
        result = SessionResult()
        assert "0 corpus" in result.summary()
        assert result.ok
