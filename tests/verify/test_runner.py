"""The differential runner: comparisons, crash handling, verified-generate."""

import numpy as np
import pytest

from repro.arch.presets import get_architecture
from repro.bench.runner import make_generator
from repro.errors import VerificationError
from repro.observability.tracer import Tracer
from repro.verify import faults
from repro.verify.case import ModelSpec
from repro.verify.fuzz import residue_sweep_specs, subset_instruction_set
from repro.verify.runner import (
    Mismatch,
    _compare_arrays,
    check_program,
    verified_generate,
    verify_model,
)


def residue_model(index=3):
    return residue_sweep_specs(128)[index].build()


class TestCompareArrays:
    def test_bit_exact_accepts_nan_in_same_lane(self):
        a = np.array([1.0, np.nan, np.inf], dtype=np.float32)
        assert _compare_arrays(a, a.copy(), tolerant=False) is None

    def test_bit_exact_reports_first_divergence(self):
        a = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        b = np.array([1.0, 9.0, 3.0], dtype=np.float32)
        detail = _compare_arrays(a, b, tolerant=False)
        assert "1 element(s) differ" in detail and "index 1" in detail

    def test_tolerant_accepts_small_float_error(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = a * (1 + 1e-6)
        assert _compare_arrays(a, b, tolerant=True) is None

    def test_tolerant_rejects_large_error(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = np.array([1.0, 3.0], dtype=np.float32)
        assert "beyond tolerance" in _compare_arrays(a, b, tolerant=True)

    def test_integer_exactness(self):
        a = np.array([1, 2], dtype=np.int16)
        assert _compare_arrays(a, a + np.int16(1), tolerant=True) is not None

    def test_shape_mismatch_reported(self):
        a = np.zeros((4,), dtype=np.int32)
        b = np.zeros((5,), dtype=np.int32)
        assert "shape" in _compare_arrays(a, b, tolerant=False)


class TestVerifyModel:
    def test_all_generators_consistent_on_residue_models(self):
        report = verify_model(residue_model(), "arm_a72")
        assert report.ok
        assert report.generators == ("simulink_coder", "dfsynth", "hcg")
        assert report.cases >= 6

    def test_isa_subset_only_constrains_hcg(self):
        arch = get_architecture("arm_a72")
        subset = subset_instruction_set(
            arch.instruction_set, ["vaddq_f32", "vmulq_f32"])
        report = verify_model(residue_model(), "arm_a72",
                              instruction_set=subset)
        assert report.ok

    def test_injected_fault_is_detected(self):
        with faults.injected("skip_remainder"):
            report = verify_model(residue_model(), "arm_a72")
        assert not report.ok
        assert any(m.kind in ("reference", "baseline")
                   for m in report.mismatches)
        codes = {d.code for d in report.to_diagnostics()}
        assert codes <= {"HCG401", "HCG402", "HCG403"}

    def test_fault_free_residue_width_passes_even_with_fault(self):
        # residue 0: no remainder prologue exists, so skipping it is a
        # no-op — exactly why naive suites miss this bug class.
        with faults.injected("skip_remainder"):
            report = verify_model(residue_model(index=0), "arm_a72")
        assert report.ok

    def test_generation_crash_is_a_mismatch_not_an_exception(self):
        report = verify_model(residue_model(), "arm_a72",
                              generator_kwargs={"hcg": {"policy": "strict"}},
                              instruction_set=subset_instruction_set(
                                  get_architecture("arm_a72").instruction_set,
                                  ["vaddq_s32"]))
        # strict HCG without f32 instructions may crash or may translate
        # scalar; either way verify_model must return a report.
        assert isinstance(report.ok, bool)

    def test_spans_and_counters_emitted(self):
        tracer = Tracer()
        verify_model(residue_model(), "arm_a72", tracer=tracer)
        assert tracer.find("verify") and tracer.find("verify.case")
        assert tracer.counters.get("verify.cases_run", 0) > 0


class TestCheckProgram:
    def test_single_program_check(self):
        model = residue_model()
        generator = make_generator("hcg", get_architecture("arm_a72"),
                                   policy="permissive")
        program = generator.generate(model)
        report = check_program(model, program, "arm_a72",
                               instruction_set=generator.iset)
        assert report.ok and report.generators == ("hcg",)


class TestVerifiedGenerate:
    def test_clean_model_returns_program(self):
        generator = make_generator("hcg", get_architecture("arm_a72"),
                                   policy="permissive")
        program = verified_generate(generator, residue_model())
        assert program.body

    def test_miscompile_raises_verification_error(self):
        generator = make_generator("hcg", get_architecture("arm_a72"),
                                   policy="permissive")
        with faults.injected("skip_remainder"):
            with pytest.raises(VerificationError) as excinfo:
                verified_generate(generator, residue_model())
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].code.startswith("HCG4")

    def test_generator_method_is_wired(self):
        for name in ("simulink_coder", "dfsynth", "hcg"):
            generator = make_generator(name, get_architecture("arm_a72"),
                                       policy="permissive")
            program = generator.generate_verified(residue_model())
            assert program.body

    def test_intensive_model_verifies_under_tolerance(self):
        spec = ModelSpec(
            name="fft16", dtype="f32", width=16,
            nodes=(
                {"kind": "in", "name": "in0"},
                {"kind": "intensive", "name": "k0", "op": "FFT",
                 "arg": "in0"},
            ),
        )
        generator = make_generator("hcg", get_architecture("arm_a72"),
                                   policy="permissive")
        program = verified_generate(generator, spec.build())
        assert program.body


class TestMismatchFormat:
    def test_codes_are_stable(self):
        m = Mismatch(kind="reference", generator="hcg", case="zeros",
                     step=0, output="y", detail="d")
        assert m.code == "HCG401"
        assert Mismatch(kind="baseline", generator="hcg", case="*", step=-1,
                        output="-", detail="d").code == "HCG402"
        assert Mismatch(kind="crash", generator="hcg", case="*", step=-1,
                        output="-", detail="d").code == "HCG403"

    def test_format_mentions_case_and_output(self):
        m = Mismatch(kind="reference", generator="hcg", case="boundary",
                     step=1, output="y_n1", detail="differs")
        text = m.format()
        assert "boundary/step1" in text and "y_n1" in text
