"""The model/ISA fuzzer: determinism, validity, schedule coverage."""

import pytest

from repro.arch.presets import get_architecture
from repro.errors import ReproError
from repro.verify.fuzz import (
    fuzz_cases,
    random_isa_names,
    random_spec,
    subset_instruction_set,
)

ARCHS = ("arm_a72", "intel_i7_8700_sse4", "intel_i7_8700")


def isets():
    return {name: get_architecture(name).instruction_set for name in ARCHS}


class TestRandomSpec:
    def test_deterministic_in_seed_and_index(self):
        assert random_spec(5, 9) == random_spec(5, 9)
        assert random_spec(5, 9) != random_spec(5, 10)

    def test_every_spec_builds_a_valid_model(self):
        for index in range(60):
            model = random_spec(0, index).build()
            assert model.outports  # something is always observable

    def test_width_spans_all_residues(self):
        lanes = 4
        widths = {random_spec(1, i, lanes=lanes).width % lanes
                  for i in range(80)}
        assert widths == set(range(lanes))

    def test_allow_intensive_false_never_emits_kernels(self):
        for index in range(60):
            spec = random_spec(2, index, allow_intensive=False)
            assert all(n["kind"] != "intensive" for n in spec.nodes)


class TestIsaSubsets:
    def test_subset_keeps_only_named_instructions(self):
        base = isets()["arm_a72"]
        names = [s.name for s in base.instructions[:3]]
        subset = subset_instruction_set(base, names)
        assert sorted(s.name for s in subset.instructions) == sorted(names)
        assert subset.vector_bits == base.vector_bits

    def test_unknown_name_rejected(self):
        base = isets()["arm_a72"]
        with pytest.raises(ReproError, match="no instruction"):
            subset_instruction_set(base, ["nope"])

    def test_empty_subset_rejected(self):
        base = isets()["arm_a72"]
        with pytest.raises(ReproError, match="at least one"):
            subset_instruction_set(base, [])

    def test_random_names_deterministic_and_never_empty(self):
        base = isets()["arm_a72"]
        for index in range(40):
            names = random_isa_names(3, index, base)
            assert names == random_isa_names(3, index, base)
            assert names
            subset_instruction_set(base, names)  # always constructible
            # a non-empty subset keeps the set's derived properties usable
            assert subset_instruction_set(base, names).max_node_count >= 1


class TestFuzzSchedule:
    def test_round_robin_and_alternating_isa(self):
        cases = fuzz_cases(9, 0, ARCHS, isets())
        assert [c.arch for c in cases[:3]] == list(ARCHS)
        assert all(c.isa_names is None for c in cases[::2])
        assert all(c.isa_names is not None for c in cases[1::2])

    def test_schedule_is_deterministic(self):
        a = fuzz_cases(6, 4, ARCHS, isets())
        b = fuzz_cases(6, 4, ARCHS, isets())
        assert a == b
