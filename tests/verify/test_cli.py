"""The ``repro verify`` and ``repro isa lint`` command-line surface."""

import json

import pytest

from repro.cli import main


class TestVerifyCommand:
    def test_single_model_ok(self, capsys):
        rc = main(["verify", "--model", "FIR", "--arch", "arm_a72"])
        assert rc == 0
        assert "all consistent" in capsys.readouterr().out

    def test_fuzz_and_corpus_ok(self, capsys, tmp_path):
        rc = main(["verify", "--model", "FIR", "--arch", "arm_a72",
                   "--fuzz", "6", "--seed", "0",
                   "--corpus", "tests/verify/corpus",
                   "--quarantine", str(tmp_path / "q")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "6 fuzzed" in out

    def test_injected_fault_fails_and_quarantines(self, capsys, tmp_path):
        quarantine = tmp_path / "q"
        rc = main(["verify", "--model", "FIR", "--arch", "arm_a72",
                   "--fuzz", "8", "--seed", "0",
                   "--quarantine", str(quarantine),
                   "--inject-fault", "skip_remainder"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "FAILURE" in captured.out
        repros = list(quarantine.glob("repro_*.json"))
        assert repros
        payload = json.loads(repros[0].read_text())
        assert payload["faults"] == ["skip_remainder"]
        # the CLI clears injected faults on the way out
        from repro.verify import faults

        assert faults.active_faults() == ()

    def test_unknown_fault_name_is_an_error(self, capsys):
        rc = main(["verify", "--inject-fault", "nope"])
        assert rc == 1
        assert "unknown fault" in capsys.readouterr().err

    def test_verbose_prints_per_case_lines(self, capsys):
        rc = main(["verify", "--model", "FIR", "--arch", "arm_a72", "-v"])
        assert rc == 0
        assert "FIR @ arm_a72" in capsys.readouterr().err


class TestIsaLintCommand:
    def test_packaged_sets_are_clean(self, capsys):
        rc = main(["isa", "lint"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_file_reports_findings_and_fails(self, capsys, tmp_path):
        bad = tmp_path / "bad.si"
        bad.write_text(
            "arch: neon\nvector_bits: 128\n"
            "Ins: x ; Graph: Frob,i32,4,I1,I2,O1 ; Code: O1 = f(I1, I2)\n"
        )
        rc = main(["isa", "lint", str(bad)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "ISA103" in captured.out

    def test_paths_without_lint_rejected(self, capsys):
        rc = main(["isa", "neon", "extra.si"])
        assert rc == 2
