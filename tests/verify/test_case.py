"""ModelSpec building / serialisation and the ReproCase format."""

import json

import pytest

from repro.errors import ReproError
from repro.model.actor_defs import ActorKind
from repro.verify.case import (
    CASE_SCHEMA_VERSION,
    ModelSpec,
    ReproCase,
    load_case,
    load_corpus,
)

SPEC = ModelSpec(
    name="demo", dtype="f32", width=6,
    nodes=(
        {"kind": "in", "name": "in0"},
        {"kind": "const", "name": "c0", "values": [1, 2, 3, 4, 5, 6]},
        {"kind": "op", "name": "n0", "op": "Mul", "args": ["in0", "c0"]},
        {"kind": "gain", "name": "n1", "arg": "n0", "gain": 2.5},
    ),
)


class TestModelSpec:
    def test_round_trips_through_json(self):
        clone = ModelSpec.from_dict(json.loads(json.dumps(SPEC.to_dict())))
        assert clone == SPEC

    def test_builds_a_validated_model(self):
        model = SPEC.build()
        assert model.name == "demo"
        assert {a.name for a in model.inports} == {"in0"}
        # the unconsumed tail node is observed through an outport
        assert [a.name for a in model.outports] == ["y_n1"]

    def test_build_is_deterministic(self):
        a, b = SPEC.build(), SPEC.build()
        assert [x.name for x in a.actors] == [x.name for x in b.actors]

    def test_switch_gets_auto_ctrl_inport(self):
        spec = ModelSpec(
            name="sw", dtype="i16", width=4,
            nodes=(
                {"kind": "in", "name": "in0"},
                {"kind": "in", "name": "in1"},
                {"kind": "switch", "name": "s0", "in1": "in0",
                 "in2": "in1", "threshold": 0},
            ),
        )
        model = spec.build()
        assert "s0_ctrl" in {a.name for a in model.inports}

    def test_delay_allows_feedback(self):
        # The delay node is declared before its consumer: its input edge
        # is wired in a deferred pass, which is what permits the cycle.
        spec = ModelSpec(
            name="fb", dtype="i32", width=4,
            nodes=(
                {"kind": "in", "name": "in0"},
                {"kind": "delay", "name": "d0", "arg": "n0", "initial": 0},
                {"kind": "op", "name": "n0", "op": "Add",
                 "args": ["in0", "d0"]},
            ),
        )
        model = spec.build()
        assert "d0" in {a.name for a in model.actors}

    def test_intensive_node_builds(self):
        spec = ModelSpec(
            name="k", dtype="f32", width=8,
            nodes=(
                {"kind": "in", "name": "in0"},
                {"kind": "intensive", "name": "k0", "op": "DCT",
                 "arg": "in0"},
            ),
        )
        model = spec.build()
        assert model.actors_of_kind(ActorKind.INTENSIVE)

    def test_unknown_kind_raises(self):
        spec = ModelSpec(name="bad", dtype="f32", width=2,
                         nodes=({"kind": "nope", "name": "x"},))
        with pytest.raises(ReproError, match="unknown node kind"):
            spec.build()

    def test_actor_count_includes_auto_actors(self):
        assert SPEC.actor_count == len(SPEC.build().actors)


class TestReproCase:
    def test_save_load_round_trip(self, tmp_path):
        case = ReproCase(spec=SPEC, arch="arm_a72", seed=3,
                        generators=("hcg",), isa_names=("vaddq_f32",),
                        faults=("skip_remainder",), steps=2,
                        mismatches=({"kind": "reference"},),
                        shrink={"steps": 1, "checks": 5, "exhausted": False})
        path = case.save(tmp_path)
        assert path.name == "repro_arm_a72_demo.json"
        loaded = load_case(path)
        assert loaded == case

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = ReproCase(spec=SPEC, arch="arm_a72", seed=0).to_dict()
        payload["schema"] = CASE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="schema"):
            load_case(path)

    def test_corrupt_file_is_a_typed_error(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="cannot read"):
            load_case(path)

    def test_load_corpus_sorted_and_missing_dir_empty(self, tmp_path):
        assert load_corpus(tmp_path / "missing") == []
        ReproCase(spec=SPEC, arch="arm_a72", seed=0).save(tmp_path)
        other = ModelSpec.from_dict({**SPEC.to_dict(), "name": "a_first"})
        ReproCase(spec=other, arch="arm_a72", seed=0).save(tmp_path)
        names = [p.name for p, _ in load_corpus(tmp_path)]
        assert names == sorted(names) and len(names) == 2


class TestCommittedCorpus:
    def test_committed_corpus_parses(self):
        from pathlib import Path

        corpus = Path(__file__).parent / "corpus"
        cases = load_corpus(corpus)
        assert len(cases) >= 30
        for _, case in cases:
            case.spec.build()  # every committed spec must stay buildable
            assert not case.faults  # the seed corpus is fault-free
