"""Shared fixtures for the translation-validation suite."""

import pytest

from repro.verify import faults


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """Fault injection is process-global; never leak across tests."""
    faults.clear()
    yield
    faults.clear()
