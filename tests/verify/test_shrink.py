"""The shrinker — including the subsystem's acceptance demo: an
injected mapping fault is caught by the differential runner and
minimized to a repro case of at most 5 actors."""

import pytest

from repro.verify import faults
from repro.verify.case import ModelSpec
from repro.verify.fuzz import residue_sweep_specs
from repro.verify.runner import verify_model
from repro.verify.shrink import checked, shrink_case


def failing_check_on(node_name):
    """A synthetic predicate: fails iff ``node_name`` is still present."""

    def check(spec, isa_names):
        return node_name in spec.node_names()

    return check


WIDE_SPEC = ModelSpec(
    name="wide", dtype="f32", width=24,
    nodes=(
        {"kind": "in", "name": "in0"},
        {"kind": "in", "name": "in1"},
        {"kind": "const", "name": "c0", "values": list(range(1, 25))},
        {"kind": "op", "name": "n0", "op": "Mul", "args": ["in0", "c0"]},
        {"kind": "op", "name": "n1", "op": "Add", "args": ["n0", "in1"]},
        {"kind": "op", "name": "n2", "op": "Sub", "args": ["n1", "in0"]},
        {"kind": "op", "name": "n3", "op": "Max", "args": ["n2", "c0"]},
    ),
)


class TestShrinkMechanics:
    def test_drops_irrelevant_nodes(self):
        result = shrink_case(WIDE_SPEC, None, failing_check_on("n0"))
        assert "n0" in result.spec.node_names()
        assert "n3" not in result.spec.node_names()
        assert result.steps > 0 and not result.exhausted

    def test_narrows_width(self):
        result = shrink_case(WIDE_SPEC, None, failing_check_on("n0"))
        assert result.spec.width < WIDE_SPEC.width
        assert result.spec.build()  # still valid at the narrow width

    def test_drops_isa_names(self):
        def check(spec, isa):
            return isa is not None and "vmulq_f32" in isa

        result = shrink_case(WIDE_SPEC,
                             ("vaddq_f32", "vmulq_f32", "vsubq_f32"), check)
        assert result.isa_names is not None
        assert "vmulq_f32" in result.isa_names
        assert len(result.isa_names) < 3

    def test_budget_exhaustion_is_flagged(self):
        result = shrink_case(WIDE_SPEC, None, failing_check_on("n0"),
                             budget=2)
        assert result.exhausted
        assert result.checks <= 2

    def test_checked_swallows_builder_errors(self):
        def always_raise(spec, isa):
            raise KeyError("nonsense intermediate spec")

        assert checked(always_raise)(WIDE_SPEC, None) is False


class TestEndToEndFaultShrink:
    def test_injected_fault_minimizes_to_tiny_repro(self):
        """ISSUE acceptance: the skip_remainder miscompile must shrink
        to a repro case of <= 5 actors."""
        spec = residue_sweep_specs(128)[3]  # f32, width 11: has remainder

        def still_fails(candidate, isa_names):
            with faults.injected("skip_remainder"):
                return not verify_model(candidate.build(), "arm_a72",
                                        generators=("hcg",)).ok

        assert still_fails(spec, None), "fault must reproduce pre-shrink"
        result = shrink_case(spec, None, still_fails, budget=60)
        assert not result.exhausted
        assert result.spec.actor_count <= 5
        # the minimized case still fails, and is clean without the fault
        assert still_fails(result.spec, None)
        assert verify_model(result.spec.build(), "arm_a72",
                            generators=("hcg",)).ok
