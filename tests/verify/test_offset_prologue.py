"""Property test for Algorithm 2's offset prologue (§3.4).

For *every* dtype with batch instructions and *every* signal length in
``1 .. 3 * lanes``, the SIMD code HCG emits for a batch group — the
vector loop plus the scalar remainder prologue covering the leading
``length % batch_size`` elements — must compute exactly what the
reference semantics compute.  Lengths below one register, exact
multiples, and every remainder residue in between are all drawn by
Hypothesis from the same strategy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.presets import get_architecture
from repro.bench.runner import make_generator
from repro.dtypes import DataType
from repro.model.builder import ModelBuilder
from repro.model.semantics import ModelEvaluator
from repro.vm.machine import Machine

#: every dtype the NEON preset has single-node batch instructions for
DTYPES = (DataType.I8, DataType.I16, DataType.I32, DataType.F32)

ARCH = get_architecture("arm_a72")


def mul_add_model(dtype: DataType, n: int):
    """in0 * c + in1 over ``n`` elements — the §4.1 FIR-stage shape that
    dispatch always classifies as one batch group."""
    b = ModelBuilder("prop", default_dtype=dtype)
    x = b.inport("in0", shape=n)
    y = b.inport("in1", shape=n)
    c = b.const("c0", value=[(i % 5) + 1 for i in range(n)], dtype=dtype)
    product = b.add_actor("Mul", "n0", x, c)
    total = b.add_actor("Add", "n1", product, y)
    b.outport("y", total)
    return b.build()


def random_operands(dtype: DataType, n: int, seed: int):
    rng = np.random.default_rng(seed)
    if dtype.is_float:
        return {name: rng.uniform(-100.0, 100.0, size=n)
                .astype(dtype.numpy_dtype) for name in ("in0", "in1")}
    info = np.iinfo(dtype.numpy_dtype)
    return {name: rng.integers(info.min, info.max, size=n,
                               dtype=dtype.numpy_dtype, endpoint=True)
            for name in ("in0", "in1")}


@st.composite
def dtype_and_length(draw):
    dtype = draw(st.sampled_from(DTYPES))
    lanes = ARCH.instruction_set.lanes_for(dtype)
    n = draw(st.integers(1, 3 * lanes))
    return dtype, n


class TestOffsetPrologueProperty:
    @given(dtype_and_length(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_batch_group_matches_scalar_reference(self, case, seed):
        dtype, n = case
        model = mul_add_model(dtype, n)
        generator = make_generator("hcg", ARCH, policy="permissive")
        program = generator.generate(model)
        machine = Machine(program, ARCH, instruction_set=generator.iset)
        inputs = random_operands(dtype, n, seed)
        with np.errstate(all="ignore"):
            got = machine.run(dict(inputs)).outputs["y"]
            expected = ModelEvaluator(model).step(dict(inputs))["y"]
        # bit-exact: the elementwise op table is shared end to end, so
        # integer wrap-around and float rounding agree exactly
        np.testing.assert_array_equal(np.asarray(got).ravel(),
                                      np.asarray(expected).ravel())
