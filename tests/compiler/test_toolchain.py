"""Tests for the GCC/Clang compiler presets."""

import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.compiler import CLANG, GCC, PERFECT, compiler_names, get_compiler


class TestPresets:
    def test_lookup(self):
        assert get_compiler("gcc") is GCC
        assert get_compiler("clang") is CLANG
        assert set(compiler_names()) == {"gcc", "clang", "perfect"}

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown compiler"):
            get_compiler("icc")

    def test_gcc_lacks_vector_forwarding(self):
        # the §4.2 mechanism: GCC cannot organize scattered SIMD
        assert not GCC.passes.vector_forwarding
        assert CLANG.passes.vector_forwarding

    def test_both_do_scalar_optimizations(self):
        for compiler in (GCC, CLANG):
            assert compiler.passes.fold_constants
            assert compiler.passes.scalar_forwarding
            assert compiler.passes.licm
            assert compiler.passes.unswitch

    def test_perfect_enables_everything(self):
        assert PERFECT.passes.vector_forwarding and PERFECT.passes.vector_dse


class TestEffectiveCost:
    def test_clang_loop_overhead_lower(self):
        gcc_cost = GCC.effective_cost(ARM_A72)
        clang_cost = CLANG.effective_cost(ARM_A72)
        assert clang_cost.loop_overhead < gcc_cost.loop_overhead

    def test_scalar_factor_applied_to_overrides(self):
        cost = CLANG.effective_cost(INTEL_I7_8700)
        base = INTEL_I7_8700.cost
        assert cost.scalar_overrides["Div"] == pytest.approx(
            base.scalar_overrides["Div"] * CLANG.scalar_factor
        )

    def test_base_table_unchanged(self):
        before = ARM_A72.cost.loop_overhead
        CLANG.effective_cost(ARM_A72)
        assert ARM_A72.cost.loop_overhead == before
