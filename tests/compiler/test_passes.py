"""Tests for the compiler-model optimization passes."""

import numpy as np
import pytest

from repro.arch import ARM_A72, INTEL_I7_8700
from repro.bench.models import benchmark_inputs, fir_model, highpass_model
from repro.codegen import HcgGenerator, SimulinkCoderGenerator
from repro.compiler.passes import (
    PassConfig,
    constant_folding,
    fold_expr,
    loop_invariant_code_motion,
    loop_unswitching,
    optimize_program,
    scalar_forwarding,
    vector_dse,
    vector_forwarding,
)
from repro.dtypes import DataType
from repro.ir import (
    AssignVar,
    BufferDecl,
    BufferKind,
    Cmp,
    Const,
    For,
    Load,
    Program,
    ScalarOp,
    Select,
    SimdLoad,
    SimdOp,
    SimdStore,
    Store,
    Var,
    const_i,
    walk,
)
from repro.vm import Machine


class TestConstantFolding:
    def test_folds_arithmetic(self):
        expr = ScalarOp("Add", (Const(2, DataType.I32), Const(3, DataType.I32)), DataType.I32)
        folded = fold_expr(expr)
        assert isinstance(folded, Const) and folded.value == 5

    def test_folds_nested(self):
        inner = ScalarOp("Mul", (Const(2, DataType.I32), Const(4, DataType.I32)), DataType.I32)
        outer = ScalarOp("Add", (inner, Const(1, DataType.I32)), DataType.I32)
        folded = fold_expr(outer)
        assert isinstance(folded, Const) and folded.value == 9

    def test_leaves_variables(self):
        expr = ScalarOp("Add", (Var("x"), Const(3, DataType.I32)), DataType.I32)
        folded = fold_expr(expr)
        assert isinstance(folded, ScalarOp)

    def test_folds_inside_loops(self):
        body = [For("i", const_i(0), const_i(4), 1,
                    (Store("b", Var("i"),
                           ScalarOp("Add", (Const(1, DataType.I32), Const(2, DataType.I32)),
                                    DataType.I32)),))]
        out = constant_folding(body)
        store = out[0].body[0]
        assert isinstance(store.expr, Const) and store.expr.value == 3


class TestScalarForwarding:
    def test_forward_store_to_load(self):
        body = [
            AssignVar("t", Const(7, DataType.I32), DataType.I32),
            Store("buf", const_i(0), Var("t")),
            AssignVar("u", Load("buf", const_i(0)), DataType.I32),
        ]
        out = scalar_forwarding(body)
        assert isinstance(out[2].expr, Var) and out[2].expr.name == "t"

    def test_other_store_invalidates(self):
        body = [
            Store("buf", const_i(0), Var("t")),
            Store("buf", const_i(1), Var("q")),  # may alias index 0? no — diff idx,
            AssignVar("u", Load("buf", const_i(0)), DataType.I32),
        ]
        out = scalar_forwarding(body)
        # conservative invalidation: buffer-level, so the load stays
        assert isinstance(out[2].expr, Load)

    def test_variable_reassignment_invalidates(self):
        body = [
            Store("buf", const_i(0), Var("t")),
            AssignVar("t", Const(0, DataType.I32), DataType.I32),
            AssignVar("u", Load("buf", const_i(0)), DataType.I32),
        ]
        out = scalar_forwarding(body)
        assert isinstance(out[2].expr, Load)

    def test_loop_boundary_invalidates(self):
        body = [
            Store("buf", const_i(0), Var("t")),
            For("i", const_i(0), const_i(2), 1, ()),
            AssignVar("u", Load("buf", const_i(0)), DataType.I32),
        ]
        out = scalar_forwarding(body)
        assert isinstance(out[2].expr, Load)


def _scattered_vector_body():
    return [
        SimdLoad("va", "x", const_i(0), DataType.I32, 4),
        SimdOp("vb", "vaddq_s32", ("va", "va"), DataType.I32, 4),
        SimdStore("tmp", const_i(0), "vb", DataType.I32, 4),
        SimdLoad("vc", "tmp", const_i(0), DataType.I32, 4),
        SimdOp("vd", "vaddq_s32", ("vc", "va"), DataType.I32, 4),
        SimdStore("out", const_i(0), "vd", DataType.I32, 4),
    ]


class TestVectorForwarding:
    def test_reload_removed_and_renamed(self):
        out = vector_forwarding(_scattered_vector_body())
        loads = [s for s in out if isinstance(s, SimdLoad)]
        assert len(loads) == 1  # the reload of tmp is gone
        final_op = [s for s in out if isinstance(s, SimdOp)][-1]
        assert final_op.args == ("vb", "va")

    def test_store_to_other_index_invalidates(self):
        body = _scattered_vector_body()
        body.insert(3, SimdStore("tmp", const_i(4), "vb", DataType.I32, 4))
        out = vector_forwarding(body)
        loads = [s for s in out if isinstance(s, SimdLoad)]
        assert len(loads) == 2  # reload kept: conservative on same buffer


class TestVectorDse:
    def test_dead_local_store_removed(self):
        program = Program("p")
        program.add_buffer(BufferDecl("x", DataType.I32, 4, BufferKind.INPUT))
        program.add_buffer(BufferDecl("tmp", DataType.I32, 4, BufferKind.LOCAL))
        program.add_buffer(BufferDecl("out", DataType.I32, 4, BufferKind.OUTPUT))
        program.body = [
            SimdLoad("va", "x", const_i(0), DataType.I32, 4),
            SimdStore("tmp", const_i(0), "va", DataType.I32, 4),
            SimdStore("out", const_i(0), "va", DataType.I32, 4),
        ]
        out = vector_dse(program)
        stores = [s for s in out if isinstance(s, SimdStore)]
        assert [s.buffer for s in stores] == ["out"]

    def test_output_store_never_removed(self):
        program = Program("p")
        program.add_buffer(BufferDecl("out", DataType.I32, 4, BufferKind.OUTPUT))
        program.body = [
            SimdLoad("va", "out", const_i(0), DataType.I32, 4),
            SimdStore("out", const_i(0), "va", DataType.I32, 4),
        ]
        assert any(isinstance(s, SimdStore) for s in vector_dse(program))


class TestLicm:
    def test_hoists_constant_index_load(self):
        program = Program("p")
        program.add_buffer(BufferDecl("ctrl", DataType.I32, 1, BufferKind.INPUT))
        program.add_buffer(BufferDecl("out", DataType.I32, 8, BufferKind.OUTPUT))
        loop = For("i", const_i(0), const_i(8), 1,
                   (Store("out", Var("i"), Load("ctrl", const_i(0))),))
        out = loop_invariant_code_motion(program, [loop])
        assert isinstance(out[0], AssignVar)
        assert isinstance(out[1], For)
        assert isinstance(out[1].body[0].expr, Var)

    def test_does_not_hoist_written_buffer(self):
        program = Program("p")
        program.add_buffer(BufferDecl("b", DataType.I32, 8, BufferKind.LOCAL))
        loop = For("i", const_i(0), const_i(8), 1,
                   (Store("b", const_i(0), Load("b", const_i(0))),))
        out = loop_invariant_code_motion(program, [loop])
        assert len(out) == 1 and isinstance(out[0], For)


class TestUnswitching:
    def test_invariant_select_pulled_out(self):
        from repro.ir import If

        cond = Cmp(">=", Var("c"), Const(0, DataType.I32))
        loop = For("i", const_i(0), const_i(8), 1,
                   (Store("out", Var("i"),
                          Select(cond, Load("a", Var("i")), Load("b", Var("i")))),))
        out = loop_unswitching([loop])
        assert isinstance(out[0], If)
        then_store = out[0].then_body[0].body[0]
        assert isinstance(then_store.expr, Load) and then_store.expr.buffer == "a"
        else_store = out[0].else_body[0].body[0]
        assert else_store.expr.buffer == "b"

    def test_variant_select_kept(self):
        cond = Cmp(">=", Var("i"), Const(4, DataType.I32))  # depends on loop var
        loop = For("i", const_i(0), const_i(8), 1,
                   (Store("out", Var("i"),
                          Select(cond, Load("a", Var("i")), Load("b", Var("i")))),))
        out = loop_unswitching([loop])
        assert isinstance(out[0], For)


class TestSemanticsPreservation:
    """Every pass pipeline must leave program outputs unchanged."""

    @pytest.mark.parametrize("config", [
        PassConfig(),
        PassConfig(vector_forwarding=True),
        PassConfig(vector_forwarding=True, vector_dse=True),
        PassConfig(fold_constants=False, scalar_forwarding=False,
                   licm=False, unswitch=False),
    ])
    @pytest.mark.parametrize("make_model,n", [(fir_model, 37), (highpass_model, 19)])
    def test_pipelines_preserve_outputs(self, config, make_model, n):
        model = make_model(n)
        inputs = benchmark_inputs(model)
        for arch, gen_cls in (
            (ARM_A72, HcgGenerator),
            (INTEL_I7_8700, SimulinkCoderGenerator),
        ):
            program = gen_cls(arch).generate(model)
            baseline = Machine(program, arch).run(inputs).outputs
            optimized = optimize_program(program, config)
            outputs = Machine(optimized, arch).run(inputs).outputs
            for key in baseline:
                assert np.allclose(
                    outputs[key], baseline[key], rtol=1e-5, atol=1e-5
                ), (key, config)

    def test_optimized_never_costs_more(self):
        model = highpass_model(64)
        inputs = benchmark_inputs(model)
        program = SimulinkCoderGenerator(INTEL_I7_8700).generate(model)
        raw = Machine(program, INTEL_I7_8700).run(inputs).cycles
        optimized = optimize_program(program, PassConfig(vector_forwarding=True))
        opt_cycles = Machine(optimized, INTEL_I7_8700).run(inputs).cycles
        assert opt_cycles <= raw
