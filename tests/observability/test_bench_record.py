"""Tests for the BENCH_codegen.json record and the ``repro bench`` CLI."""

import json

import pytest

from repro.cli import main
from repro.compiler.toolchain import get_compiler
from repro.observability.benchfile import (
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    build_bench_record,
    validate_bench_record,
    write_bench_record,
)


def tiny_matrix(arch="arm_a72"):
    from repro.bench.trajectory import bench_matrix, quick_suite

    models = {"FIR": quick_suite()["FIR"]}
    return bench_matrix(models, get_compiler("gcc"), archs=(arch,), steps=1)


class TestBenchRecord:
    def test_build_and_validate(self):
        from repro.bench.trajectory import isa_of_archs

        matrix = tiny_matrix()
        record = build_bench_record(
            matrix, isa_of_archs(("arm_a72",)), "gcc", steps=1, quick=True
        )
        validate_bench_record(record)  # must not raise
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["kind"] == BENCH_KIND
        assert record["archs"] == {"arm_a72": "neon"}
        assert record["summary"]["cells"] == 3
        generators = {row["generator"] for row in record["results"]}
        assert generators == {"simulink_coder", "dfsynth", "hcg"}
        hcg = next(r for r in record["results"] if r["generator"] == "hcg")
        assert hcg["isa"] == "neon"
        assert hcg["simd_coverage_pct"] > 0
        assert "history.hit_rate" in hcg["metrics"]
        assert "alg2.groups_vectorized" in hcg["metrics"]
        # HCG beats both baselines on FIR (the paper's headline case)
        assert record["summary"]["hcg_vs_simulink_pct"]["min"] > 0
        assert record["summary"]["hcg_vs_dfsynth_pct"]["min"] > 0

    def test_write_validates_and_round_trips(self, tmp_path):
        from repro.bench.trajectory import isa_of_archs

        record = build_bench_record(
            tiny_matrix(), isa_of_archs(("arm_a72",)), "gcc", steps=1, quick=True
        )
        path = write_bench_record(record, tmp_path / "BENCH_codegen.json")
        validate_bench_record(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda r: r.update(schema=99), "schema"),
            (lambda r: r.update(kind="BENCH_other"), "kind"),
            (lambda r: r.update(results=[]), "results"),
            (lambda r: r["results"][0].pop("simd_coverage_pct"), "simd_coverage_pct"),
            (lambda r: r["results"][0].update(iterations="many"), "iterations"),
            (lambda r: r.update(quick="yes"), "quick"),
            (lambda r: r.pop("summary"), "summary"),
        ],
    )
    def test_validate_rejects_malformed(self, mutate, message):
        from repro.bench.trajectory import isa_of_archs

        record = build_bench_record(
            tiny_matrix(), isa_of_archs(("arm_a72",)), "gcc", steps=1, quick=True
        )
        mutate(record)
        with pytest.raises(ValueError, match=message):
            validate_bench_record(record)

    def test_int_valued_floats_are_accepted(self):
        from repro.bench.trajectory import isa_of_archs

        record = build_bench_record(
            tiny_matrix(), isa_of_archs(("arm_a72",)), "gcc", steps=1, quick=True
        )
        record["results"][0]["simd_coverage_pct"] = 0  # whole numbers OK
        validate_bench_record(record)


class TestStrictJsonFiniteness:
    """A baseline file with a ``NaN``/``Infinity`` literal is unreadable
    by strict JSON parsers; the validator rejects it before any write."""

    def record(self):
        from repro.bench.trajectory import isa_of_archs

        return build_bench_record(
            tiny_matrix(), isa_of_archs(("arm_a72",)), "gcc", steps=1, quick=True
        )

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_timing_rejected(self, bad):
        record = self.record()
        record["results"][0]["vm_seconds"] = bad
        with pytest.raises(ValueError, match="finite"):
            validate_bench_record(record)

    def test_non_finite_nested_in_metrics_rejected(self):
        record = self.record()
        record["results"][0]["metrics"]["history.hit_rate"] = float("nan")
        with pytest.raises(ValueError, match=r"metrics\.history\.hit_rate"):
            validate_bench_record(record)

    def test_non_finite_summary_rejected(self):
        record = self.record()
        record["summary"]["hcg_vs_simulink_pct"]["min"] = float("inf")
        with pytest.raises(ValueError, match="summary"):
            validate_bench_record(record)

    def test_non_json_metric_value_rejected(self):
        record = self.record()
        record["results"][0]["metrics"]["bad"] = {1, 2}
        with pytest.raises(ValueError, match="JSON value"):
            validate_bench_record(record)

    def test_write_refuses_nan_leaving_no_file(self, tmp_path):
        record = self.record()
        record["summary"]["nan"] = float("nan")
        target = tmp_path / "BENCH_codegen.json"
        with pytest.raises(ValueError):
            write_bench_record(record, target)
        assert not target.exists()

    def test_serializer_backstop_forbids_nan(self, tmp_path):
        # Even if validation were bypassed, json.dumps(allow_nan=False)
        # must refuse to emit the invalid literal.
        with pytest.raises(ValueError):
            json.dumps({"x": float("nan")}, allow_nan=False)


class TestBenchCli:
    def test_quick_on_model_file_writes_schema_valid_json(self, tmp_path, capsys):
        # Tier-1 smoke: `repro bench --quick` on fir.xml produces
        # schema-valid JSON (ISSUE 2 satellite 5).
        out_path = tmp_path / "BENCH_codegen.json"
        assert main([
            "bench", "--quick", "--model", "models/fir.xml",
            "--json", str(out_path),
        ]) == 0
        captured = capsys.readouterr()
        assert "vs Simulink" in captured.out
        assert str(out_path) in captured.out
        payload = json.loads(out_path.read_text())
        validate_bench_record(payload)
        assert payload["quick"] is True
        assert {row["model"] for row in payload["results"]} == {"FIR"}

    def test_single_model_without_json_writes_nothing(self, tmp_path, capsys,
                                                      monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--quick", "--model", "FIR"]) == 0
        assert "vs Simulink" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_codegen.json").exists()

    def test_repeated_models_share_history_per_arch(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        assert main([
            "bench", "--quick", "--model", "FFT", "--model", "FFT",
            "--json", str(out_path),
        ]) == 0
        # a repeated --model collapses to one suite entry, not two rows
        payload = json.loads(out_path.read_text())
        assert sum(1 for r in payload["results"] if r["generator"] == "hcg") == 1


class TestTraceOutCli:
    def test_generate_trace_out_writes_span_json(self, tmp_path, capsys):
        trace_path = tmp_path / "fir_trace.json"
        # --no-cache keeps the span shape deterministic even when the
        # environment carries a warm REPRO_CACHE_DIR (the CI warm leg)
        assert main([
            "generate", "FIR", "-o", str(tmp_path / "fir.c"),
            "--trace-out", str(trace_path), "--no-cache",
        ]) == 0
        payload = json.loads(trace_path.read_text())
        assert payload["schema"] == 1
        # generation now goes through the repro.api facade, so the root
        # span is the service request wrapping the generator's own span
        (root,) = payload["spans"]
        assert root["name"] == "service.generate"
        assert root["attrs"]["generator"] == "hcg"
        assert root["attrs"]["from_cache"] is False
        (generate_span,) = root["children"]
        assert generate_span["name"] == "generate"
        child_names = [c["name"] for c in generate_span["children"]]
        assert "dispatch" in child_names and "model.parse" in child_names
        assert payload["counters"]  # HCG emits alg1/alg2 counters
