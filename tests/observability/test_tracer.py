"""Tests for the span tracer: nesting, exception safety, export, and the
zero-overhead guarantee of the disabled (null) tracer."""

import json
import timeit

import pytest

from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    TRACE_SCHEMA_VERSION,
    Tracer,
)


class FakeClock:
    """Deterministic monotonic clock for duration assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.25
        return self.now


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert [s.name for s in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [s.name for s in outer.children] == ["inner_a", "inner_b"]
        assert [s.name for s in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_iter_spans_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.iter_spans()] == ["a", "b", "c"]

    def test_find_and_total_seconds(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("repeat"):
                pass
        assert len(tracer.find("repeat")) == 3
        assert tracer.total_seconds("repeat") == pytest.approx(0.75)

    def test_durations_use_the_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("timed") as span:
            pass
        assert span.duration == pytest.approx(0.25)

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", model="FIR") as span:
            span.set(groups=2).set(units=3)
        assert span.attrs == {"model": "FIR", "groups": 2, "units": 3}

    def test_open_span_duration_is_zero(self):
        tracer = Tracer()
        span = tracer.span("never_entered")
        assert span.duration == 0.0


class TestExceptionSafety:
    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        outer = tracer.roots[0]
        assert outer.status == "error"
        failing = outer.children[0]
        assert failing.status == "error"
        assert failing.attrs["exception"] == "ValueError"
        assert failing.end is not None  # the clock was stopped

    def test_tracer_usable_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError
        with tracer.span("good"):
            pass
        assert [s.name for s in tracer.roots] == ["bad", "good"]
        assert tracer.roots[1].status == "ok"

    def test_caught_exception_inside_span_stays_ok(self):
        tracer = Tracer()
        with tracer.span("outer"):
            try:
                with tracer.span("failing"):
                    raise ValueError
            except ValueError:
                pass
        assert tracer.roots[0].status == "ok"
        assert tracer.roots[0].children[0].status == "error"


class TestCounters:
    def test_count_accumulates(self):
        tracer = Tracer()
        tracer.count("hits")
        tracer.count("hits")
        tracer.count("nodes", 5)
        assert tracer.counters == {"hits": 2, "nodes": 5}


class TestJsonExport:
    def test_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("generate", model="FIR"):
            with tracer.span("dispatch") as span:
                span.set(groups=1)
        tracer.count("alg2.groups_vectorized")
        path = tmp_path / "trace.json"
        tracer.dump_json(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == TRACE_SCHEMA_VERSION
        assert payload["counters"] == {"alg2.groups_vectorized": 1}
        (root,) = payload["spans"]
        assert root["name"] == "generate"
        assert root["attrs"] == {"model": "FIR"}
        assert root["start_s"] == 0.0  # starts are epoch-relative
        assert root["children"][0]["name"] == "dispatch"
        assert root["children"][0]["attrs"] == {"groups": 1}
        assert root["duration_s"] > root["children"][0]["duration_s"]


class TestNullTracer:
    def test_shared_singleton_span(self):
        # Zero allocation when disabled: every call site gets the same
        # preallocated handle back.
        a = NULL_TRACER.span("generate", model="x")
        b = NULL_TRACER.span("dispatch")
        assert a is b

    def test_null_span_protocol(self):
        with NULL_TRACER.span("anything") as span:
            assert span.set(attr=1) is span
            assert span.duration == 0.0

    def test_null_span_never_swallows(self):
        with pytest.raises(ValueError):
            with NULL_TRACER.span("anything"):
                raise ValueError

    def test_counters_empty_and_count_is_noop(self):
        NULL_TRACER.count("hits")
        assert NULL_TRACER.counters == {}
        assert NULL_TRACER.to_dict() == {
            "schema": TRACE_SCHEMA_VERSION,
            "counters": {},
            "spans": [],
        }

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NullTracer().enabled is False

    def test_disabled_overhead_is_negligible(self):
        # The acceptance bar: tracing disabled adds no measurable
        # overhead.  A null span() + enter/exit must cost about the same
        # as a plain method call — we allow a generous 5x margin over a
        # no-op call so CI scheduling noise cannot flake the test, which
        # still fails hard if span() ever starts allocating or reading
        # the clock (each is >10x a no-op call).
        null = NullTracer()

        class Plain:
            def noop(self):
                return self

        plain = Plain()

        def traced():
            with null.span("x"):
                pass

        def untraced():
            plain.noop()

        number = 20_000
        base = min(timeit.repeat(untraced, number=number, repeat=5))
        cost = min(timeit.repeat(traced, number=number, repeat=5))
        assert cost < base * 5 + 1e-3


class TestPipelineIntegration:
    def test_identical_program_with_and_without_tracer(self):
        from repro.arch.presets import get_architecture
        from repro.bench.models import fir_model
        from repro.codegen.hcg.generator import HcgGenerator
        from repro.ir.printer import format_program

        arch = get_architecture("arm_a72")
        model = fir_model(64)
        plain = HcgGenerator(arch).generate(model)
        traced = HcgGenerator(arch, tracer=Tracer()).generate(model)
        assert format_program(plain) == format_program(traced)

    def test_hcg_generation_emits_expected_spans_and_counters(self):
        from repro.arch.presets import get_architecture
        from repro.bench.models import fft_model
        from repro.codegen.hcg.generator import HcgGenerator
        from repro.observability.metrics import COUNTERS, SPANS

        tracer = Tracer()
        arch = get_architecture("arm_a72")
        HcgGenerator(arch, tracer=tracer).generate(fft_model(64))
        (root,) = tracer.roots
        assert root.name == SPANS.GENERATE
        child_names = {s.name for s in root.children}
        assert {SPANS.MODEL_PARSE, SPANS.DISPATCH, SPANS.COMPOSE, SPANS.REUSE} <= child_names
        selects = tracer.find(SPANS.ALG1_SELECT)
        assert selects and selects[0].children  # per-candidate sub-spans
        assert tracer.counters[COUNTERS.ALG1_CANDIDATES_MEASURED] > 0
        assert tracer.counters[COUNTERS.ALG1_HISTORY_MISSES] == 1

    def test_dispatch_demotion_counts_scalar_groups(self):
        from repro.arch.presets import get_architecture
        from repro.codegen.hcg.generator import HcgGenerator
        from repro.dtypes import DataType
        from repro.model.builder import ModelBuilder
        from repro.observability.metrics import COUNTERS

        # width 3 < one NEON register: dispatch demotes the group (HCG211)
        b = ModelBuilder("narrow", default_dtype=DataType.I32)
        a = b.inport("a", shape=3)
        c = b.inport("c", shape=3)
        b.outport("o", b.add_actor("Add", "s", b.add_actor("Mul", "m", a, c), a))
        tracer = Tracer()
        generator = HcgGenerator(
            get_architecture("arm_a72"), tracer=tracer, policy="permissive"
        )
        generator.generate(b.build())
        assert tracer.counters[COUNTERS.ALG2_GROUPS_SCALAR] == 1
        assert COUNTERS.ALG2_GROUPS_VECTORIZED not in tracer.counters
        assert [d.code for d in generator.last_diagnostics] == ["HCG211"]

    def test_history_hit_counter_on_second_generation(self):
        from repro.arch.presets import get_architecture
        from repro.bench.models import fft_model
        from repro.codegen.hcg.generator import HcgGenerator
        from repro.codegen.hcg.history import SelectionHistory
        from repro.observability.metrics import COUNTERS

        arch = get_architecture("arm_a72")
        history = SelectionHistory()
        model = fft_model(64)
        HcgGenerator(arch, history=history).generate(model)
        tracer = Tracer()
        HcgGenerator(arch, history=history, tracer=tracer).generate(model)
        assert tracer.counters[COUNTERS.ALG1_HISTORY_HITS] == 1
        assert COUNTERS.ALG1_HISTORY_MISSES not in tracer.counters
