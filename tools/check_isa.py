#!/usr/bin/env python3
"""Instruction-set data-file lint, run by the CI ``verify`` job.

Runs :mod:`repro.isa.lint` over the packaged ``.si`` files (or any
paths given on the command line) and prints every finding as
``file:line: CODE [instruction]: message``.

Exit status 0 = clean; 1 = findings.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.isa.lint import lint_paths  # noqa: E402


def main(argv) -> int:
    findings = lint_paths(argv)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} ISA lint finding(s)", file=sys.stderr)
        return 1
    print("check_isa: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
