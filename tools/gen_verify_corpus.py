#!/usr/bin/env python3
"""Regenerate the committed verification corpus (tests/verify/corpus/).

The corpus is the deterministic, always-passing seed set that the CI
``verify`` job replays on every push:

* one residue-sweep model per ``width % lanes`` class (f32 and i16 on
  the 128-bit presets, f32 on AVX2) — the offset-prologue edge cases;
* a handful of fuzzed (model, ISA subset) cases per architecture,
  frozen here so CI replays the exact same graphs.

Every case is verified before being written; a case that fails never
enters the corpus.  Run from the repo root:

    PYTHONPATH=src python tools/gen_verify_corpus.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.arch.presets import get_architecture  # noqa: E402
from repro.verify.case import ReproCase  # noqa: E402
from repro.verify.fuzz import (  # noqa: E402
    random_isa_names,
    random_spec,
    residue_sweep_specs,
    subset_instruction_set,
)
from repro.verify.runner import verify_model  # noqa: E402

CORPUS_DIR = REPO / "tests" / "verify" / "corpus"
SEED = 0

#: frozen fuzz picks: (arch, fuzz index, with ISA subset)
FUZZ_PICKS = (
    ("arm_a72", 3, True),
    ("arm_a72", 7, False),
    ("intel_i7_8700_sse4", 11, True),
    ("intel_i7_8700", 5, True),
    ("intel_i7_8700", 12, False),
)


def main() -> int:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for stale in CORPUS_DIR.glob("repro_*.json"):
        stale.unlink()
    written = 0

    def emit(spec, arch_name, isa_names) -> None:
        nonlocal written
        instruction_set = None
        if isa_names is not None:
            base = get_architecture(arch_name).instruction_set
            instruction_set = subset_instruction_set(base, isa_names)
        report = verify_model(spec.build(), arch_name,
                              instruction_set=instruction_set, seed=SEED)
        if not report.ok:
            raise SystemExit(
                f"refusing to commit a failing case: {report.summary()}"
            )
        case = ReproCase(spec=spec, arch=arch_name, seed=SEED,
                         generators=("simulink_coder", "dfsynth", "hcg"),
                         isa_names=isa_names)
        path = case.save(CORPUS_DIR)
        print(f"wrote {path.relative_to(REPO)}")
        written += 1

    # Residue sweeps: every offset-prologue residue on each preset.
    for arch_name, dtypes in (
        ("arm_a72", None),                 # 128-bit: f32 r0-3 + i16 r0-7
        ("intel_i7_8700_sse4", None),
        ("intel_i7_8700", "f32_only"),     # 256-bit: f32 r0-7
    ):
        arch = get_architecture(arch_name)
        bits = arch.instruction_set.vector_bits
        if dtypes == "f32_only":
            from repro.dtypes import DataType

            specs = residue_sweep_specs(bits, dtypes=(DataType.F32,))
        else:
            specs = residue_sweep_specs(bits)
        for spec in specs:
            emit(spec, arch_name, None)

    # Frozen fuzz cases.
    for arch_name, index, with_isa in FUZZ_PICKS:
        base = get_architecture(arch_name).instruction_set
        lanes = max(base.vector_bits // 32, 2)
        spec = random_spec(SEED, index, lanes=lanes)
        isa_names = random_isa_names(SEED, index, base) if with_isa else None
        emit(spec, arch_name, isa_names)

    print(f"{written} corpus case(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
