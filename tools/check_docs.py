#!/usr/bin/env python3
"""Documentation consistency checks, run by the CI ``docs`` job.

Two checks, both over the repository's own files (no network):

1. **Link check** — every relative markdown link / image in
   ``docs/*.md`` and ``README.md`` must point at an existing file, and
   an in-page ``#anchor`` must match a heading in the target document.
   External ``http(s)://`` links are only syntax-checked.
2. **Diagnostic-code coverage** — every ``HCGnnn`` code registered in
   ``src/repro/diagnostics.py`` must be documented in
   ``docs/observability.md`` (and, being the primary reference,
   ``docs/robustness.md``); a documented code that no longer exists in
   the source is also an error.
3. **Span/counter coverage** — every name in the ``SPANS`` and
   ``COUNTERS`` registries (``src/repro/observability/metrics.py``)
   must appear in ``docs/observability.md``, and every name in that
   document's span/counter tables must still be registered. Adding an
   instrumentation name without documenting it (or documenting a name
   that was never emitted) fails the docs job.

Exit status 0 = clean; 1 = findings (printed one per line as
``file:line: message``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: the documents under check
DOC_FILES = sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]

#: markdown inline links/images: [text](target) — excludes ``](`` in code
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

CODE_RE = re.compile(r"\bHCG\d{3}\b")


def strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks and inline code spans: links inside
    them are examples, not navigation."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def anchor_of(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def heading_anchors(path: Path) -> set:
    return {anchor_of(h) for h in HEADING_RE.findall(path.read_text())}


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def display_path(path: Path) -> str:
    try:
        return str(path.relative_to(REPO))
    except ValueError:  # a document outside the repo (tests)
        return str(path)


def check_links() -> list:
    problems = []
    for doc in DOC_FILES:
        raw = doc.read_text()
        text = strip_code_blocks(raw)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            where = f"{display_path(doc)}:{line_of(raw, raw.find(match.group(0)))}"
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                if target[1:] not in heading_anchors(doc):
                    problems.append(f"{where}: broken anchor {target!r}")
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{where}: broken link {target!r}")
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in heading_anchors(resolved):
                    problems.append(
                        f"{where}: broken anchor {target!r} "
                        f"(no such heading in {path_part})"
                    )
    return problems


def registered_codes() -> set:
    source = (REPO / "src" / "repro" / "diagnostics.py").read_text()
    return set(CODE_RE.findall(source))


def check_diagnostic_codes() -> list:
    problems = []
    known = registered_codes()
    for doc_name in ("observability.md", "robustness.md"):
        doc = REPO / "docs" / doc_name
        documented = set(CODE_RE.findall(doc.read_text()))
        for code in sorted(known - documented):
            problems.append(
                f"docs/{doc_name}:1: diagnostic code {code} "
                f"(src/repro/diagnostics.py) is not documented here"
            )
        for code in sorted(documented - known):
            problems.append(
                f"docs/{doc_name}:1: documents {code}, which is not "
                f"registered in src/repro/diagnostics.py"
            )
    return problems


#: a string-constant assignment inside the SPANS / COUNTERS classes
METRIC_NAME_RE = re.compile(r'^\s{4}[A-Z][A-Z0-9_]*\s*=\s*"([^"]+)"', re.MULTILINE)

#: a table row whose first cell is a single code span: | `name` | ...
TABLE_NAME_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|", re.MULTILINE)


def registered_metric_names() -> dict:
    """``{"span": {...}, "counter": {...}}`` from the metrics registry."""
    source = (REPO / "src" / "repro" / "observability" / "metrics.py").read_text()
    names = {}
    for kind, class_name in (("span", "SPANS"), ("counter", "COUNTERS")):
        match = re.search(
            rf"^class {class_name}\b.*?(?=^class |\Z)", source,
            re.MULTILINE | re.DOTALL,
        )
        if match is None:
            raise SystemExit(f"metrics.py: class {class_name} not found")
        names[kind] = set(METRIC_NAME_RE.findall(match.group(0)))
    return names


def table_section(text: str, heading: str) -> str:
    """The body of one ``###`` section of a document ('' if absent)."""
    match = re.search(
        rf"^###\s+{re.escape(heading)}\s*$(.*?)(?=^#{{1,3}}\s|\Z)", text,
        re.MULTILINE | re.DOTALL,
    )
    return match.group(1) if match else ""


def check_metric_names() -> list:
    problems = []
    doc = REPO / "docs" / "observability.md"
    text = doc.read_text()
    known = registered_metric_names()
    for kind, heading in (("span", "Span names"), ("counter", "Counter names")):
        section = table_section(text, heading)
        if not section:
            problems.append(
                f"docs/observability.md:1: '### {heading}' section not found"
            )
            continue
        documented = set(TABLE_NAME_RE.findall(section))
        for name in sorted(known[kind] - documented):
            problems.append(
                f"docs/observability.md:1: {kind} {name!r} "
                f"(src/repro/observability/metrics.py) is not documented "
                f"in the {heading} table"
            )
        for name in sorted(documented - known[kind]):
            problems.append(
                f"docs/observability.md:1: {heading} table documents "
                f"{name!r}, which is not registered in "
                f"src/repro/observability/metrics.py"
            )
    return problems


def main() -> int:
    problems = check_links() + check_diagnostic_codes() + check_metric_names()
    for problem in problems:
        print(problem)
    checked = len(DOC_FILES)
    if problems:
        print(f"check_docs: {len(problems)} problem(s) in {checked} documents")
        return 1
    print(f"check_docs: {checked} documents OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
