#!/usr/bin/env python3
"""Load + chaos harness for the codegen daemon (``repro serve``).

Spawns a daemon (or targets a running one with ``--url``), replays a
seeded mix of generate/verify requests from concurrent keep-alive
clients, then SIGTERMs the daemon and checks the drain.  With
``--inject`` the daemon runs with chaos faults enabled, and the run
doubles as the resilience acceptance test (the CI chaos leg):

* every 5xx response must carry a stable ``HCG5xx`` diagnostic code —
  an undiagnosed 500 means an unhandled failure mode;
* the daemon log must stay structured — any traceback or non-JSON
  stderr line is an unhandled exception;
* client-observed p99 latency must stay under the request deadline
  (plus scheduling slack): deadlines are real, not advisory;
* under injected faults the circuit breaker must trip AND recover at
  least once (the run keeps probing with light traffic until it does);
* the SIGTERM drain must exit 0 with ``drain.complete``, losing no
  accepted request.

With ``--multi-tenant`` the run becomes the fairness + hot-reload
acceptance test: half the offered load is an aggressive ``noisy``
tenant (contained by per-tenant quotas and, with ``--inject
noisy_neighbor``, stalled by chaos), the other half a ``polite``
tenant; halfway through, live traffic still in flight, the harness
POSTs ``/admin/reload`` tightening the noisy tenant's rate limit and
asserts: the reload is accepted (HCG515, config generation bumps), the
tightened limits observably shed the noisy tenant with HCG511/HCG512
(never a silent 5xx), the polite tenant sees no tenant-level shed and
its p99 stays inside the deadline envelope, and every in-flight
request at reload time completes.

Examples::

    python tools/loadgen.py --requests 300 --inject worker_crash,slow_generator
    python tools/loadgen.py --requests 1000 --concurrency 16 --json report.json
    python tools/loadgen.py --url http://127.0.0.1:8337 --requests 200
    python tools/loadgen.py --requests 300 --multi-tenant --inject noisy_neighbor
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

#: request mix (seeded): benchmark models at quick scales
MODELS = ("FIR", "FFT", "DCT", "Conv", "LowPass", "HighPass")
SCALES = (16, 32, 64)
GENERATOR_WEIGHTS = (("hcg", 0.7), ("dfsynth", 0.15), ("simulink_coder", 0.15))

#: the two tenants of the --multi-tenant mixed load
POLITE_TENANT = "polite"
NOISY_TENANT = "noisy"

#: reload document POSTed mid-run in --multi-tenant mode: clamp the
#: noisy tenant hard enough that its post-reload traffic must shed
NOISY_CLAMP = {"tenants": {NOISY_TENANT: {
    "rate": 2, "burst": 2, "max_queued": 4,
}}}


def build_requests(count: int, seed: int, verify_share: float) -> List[dict]:
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        roll, acc, generator = rng.random(), 0.0, "hcg"
        for name, weight in GENERATOR_WEIGHTS:
            acc += weight
            if roll < acc:
                generator = name
                break
        requests.append({
            "model": rng.choice(MODELS),
            "scale": rng.choice(SCALES),
            "generator": generator,
            "verify": rng.random() < verify_share,
            "include_source": False,
        })
    return requests


def build_multi_tenant_requests(count: int, seed: int,
                                verify_share: float) -> List[dict]:
    """Interleave a polite mixed load with an aggressive noisy tenant.

    The noisy tenant hammers one cheap batchable request shape (no
    verify) as fast as its connections allow; the polite tenant sends
    the normal seeded mix.  Tagging rides in a ``tenant`` key that
    :func:`run_load` lifts into the ``X-Tenant`` header.
    """
    rng = random.Random(seed)
    polite = build_requests((count + 1) // 2, seed ^ 0x1EA5, verify_share)
    requests = []
    for i in range(count):
        if i % 2 == 0 and polite:
            requests.append(dict(polite.pop(), tenant=POLITE_TENANT))
        else:
            requests.append({
                "model": rng.choice(MODELS),
                "scale": 16,
                "generator": "hcg",
                "verify": False,
                "include_source": False,
                "tenant": NOISY_TENANT,
            })
    return requests


class Client:
    """One keep-alive HTTP client; re-connects after daemon-side closes."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host, self.port, self.timeout = host, port, timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def request(self, method: str, path: str,
                payload: Optional[dict] = None,
                headers: Optional[Dict[str, str]] = None) -> Tuple[int, dict]:
        body = json.dumps(payload).encode() if payload is not None else None
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
            try:
                self._conn.request(method, path, body=body,
                                   headers=headers or {})
                response = self._conn.getresponse()
                data = response.read()
                if response.getheader("Connection", "") == "close":
                    self.close()
                return response.status, json.loads(data)
            except (OSError, http.client.HTTPException, json.JSONDecodeError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None


def percentile(values: List[float], p: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, int(p * (len(ordered) - 1)))
    return ordered[rank]


def spawn_daemon(args: argparse.Namespace, log_path: str) -> Tuple[subprocess.Popen, int]:
    """Start ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0",
        "--workers", str(args.workers),
        "--queue-size", str(args.queue_size),
        "--deadline", str(args.deadline),
        "--drain-grace", str(args.drain_grace),
        "--breaker-threshold", str(args.breaker_threshold),
        "--breaker-cooldown", str(args.breaker_cooldown),
        "--chaos-rate", str(args.chaos_rate),
        "--chaos-seed", str(args.seed),
        "--chaos-slow", str(args.chaos_slow),
    ]
    if args.inject:
        command += ["--inject", args.inject]
    if args.cache_dir:
        command += ["--cache-dir", args.cache_dir]
    if getattr(args, "multi_tenant", False):
        # Contain the aggressor from the start: a concurrency quota
        # below --workers plus a short queue, so a noisy_neighbor stall
        # can never occupy every worker.  Rate limits start generous;
        # the mid-run reload clamps them (NOISY_CLAMP).
        command += ["--tenant",
                    f"{NOISY_TENANT}:max_concurrency=2,max_queued=8"]
    log = open(log_path, "w")
    proc = subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL,
                            stderr=log)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited {proc.returncode} before listening; "
                f"see {log_path}")
        with open(log_path) as handle:
            for line in handle:
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if event.get("event") == "listening":
                    return proc, int(event["port"])
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError(f"daemon never reported listening; see {log_path}")


def run_load(host: str, port: int, requests: List[dict],
             concurrency: int, timeout: float,
             midpoint_hook: Optional[Callable[[], None]] = None) -> List[dict]:
    """Replay the workload from ``concurrency`` threads; per-request rows.

    ``midpoint_hook`` (if given) runs exactly once, on whichever worker
    thread pulls the halfway request — i.e. while the other threads
    have live traffic in flight.  The multi-tenant mode uses it to fire
    the hot reload mid-run.
    """
    results: List[dict] = []
    lock = threading.Lock()
    index = {"next": 0}
    halfway = len(requests) // 2

    def pull() -> Optional[Tuple[int, dict]]:
        with lock:
            i = index["next"]
            if i >= len(requests):
                return None
            index["next"] = i + 1
            return i, requests[i]

    def worker() -> None:
        client = Client(host, port, timeout)
        while True:
            item = pull()
            if item is None:
                break
            i, payload = item
            if midpoint_hook is not None and i == halfway:
                midpoint_hook()
            path = "/verify" if payload["verify"] else "/generate"
            tenant = payload.get("tenant")
            headers = {"X-Tenant": tenant} if tenant else None
            body = {k: v for k, v in payload.items()
                    if k not in ("verify", "tenant")}
            started = time.monotonic()
            try:
                status, response = client.request("POST", path, body,
                                                  headers=headers)
            except Exception as exc:  # transport failure, not a daemon answer
                status, response = -1, {"error": f"{type(exc).__name__}: {exc}"}
            elapsed_ms = (time.monotonic() - started) * 1000.0
            with lock:
                results.append({
                    "index": i, "status": status, "ms": elapsed_ms,
                    "tenant": tenant,
                    "after_reload": midpoint_hook is not None and i > halfway,
                    "code": response.get("code"),
                    "demoted": bool(response.get("demoted")),
                    "codes": sorted({d.get("code") for d in
                                     response.get("diagnostics", ())
                                     if d.get("code")}),
                })
        client.close()

    threads = [threading.Thread(target=worker) for _ in range(concurrency)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def await_breaker_recovery(host: str, port: int, timeout: float,
                           budget_s: float) -> dict:
    """Keep light traffic flowing until a tripped breaker recovers.

    A burst of chaos at the very end of the main load can leave a
    breaker open with no traffic to probe it; recovery needs requests.
    Returns the final /metrics snapshot.
    """
    client = Client(host, port, timeout)
    deadline = time.monotonic() + budget_s
    metrics: dict = {}
    try:
        while time.monotonic() < deadline:
            _, metrics = client.request("GET", "/metrics")
            counters = metrics.get("counters", {})
            trips = counters.get("server.breaker.trips", 0)
            recoveries = counters.get("server.breaker.recoveries", 0)
            states = {name: snap.get("state") for name, snap in
                      metrics.get("breakers", {}).items()}
            if (not trips or recoveries >= 1) and "open" not in states.values():
                break
            with _suppress():
                client.request("POST", "/generate", {
                    "model": "FIR", "scale": 16, "generator": "hcg",
                    "include_source": False,
                })
            time.sleep(0.05)
    finally:
        client.close()
    return metrics


class _suppress:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return True


def _tenant_sheds(metrics: dict) -> int:
    counters = metrics.get("counters", {})
    return (counters.get("server.shed.tenant_rate", 0)
            + counters.get("server.shed.tenant_quota", 0))


def check_log(log_path: str) -> List[str]:
    """Unhandled-exception scan: every stderr line must be a JSON event."""
    problems = []
    with open(log_path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                json.loads(line)
            except json.JSONDecodeError:
                problems.append(f"line {number} is not a JSON event: {line[:120]}")
    return problems


def _check_multi_tenant(args: argparse.Namespace, results: List[dict],
                        report: dict, reload_info: dict,
                        metrics: dict) -> List[str]:
    """Fairness + hot-reload acceptance checks for --multi-tenant runs."""
    failures = []
    if len(results) != args.requests:
        failures.append(f"answered {len(results)} of {args.requests} "
                        "requests (in-flight work lost?)")
    if reload_info.get("status") != 200:
        failures.append(f"mid-run reload did not succeed: {reload_info}")
    elif not reload_info.get("generation"):
        failures.append("reload accepted but config generation never "
                        f"bumped: {reload_info}")
    sheds_before = reload_info.get("sheds_before", 0) or 0
    if _tenant_sheds(metrics) <= sheds_before:
        failures.append("reloaded rate clamp had no observable effect: "
                        f"tenant sheds {sheds_before} -> "
                        f"{_tenant_sheds(metrics)}")
    noisy = [r for r in results if r["tenant"] == NOISY_TENANT]
    polite = [r for r in results if r["tenant"] == POLITE_TENANT]
    noisy_shed = [r for r in noisy if r["code"] in ("HCG511", "HCG512")]
    if not noisy_shed:
        failures.append("noisy tenant was never shed with HCG511/HCG512")
    undiagnosed_429 = [r for r in results
                       if r["status"] == 429 and not r["code"]]
    if undiagnosed_429:
        failures.append(f"{len(undiagnosed_429)} 429 response(s) without a "
                        f"stable HCG code, e.g. {undiagnosed_429[:3]}")
    polite_tenant_shed = [r for r in polite
                          if r["code"] in ("HCG511", "HCG512")]
    if polite_tenant_shed:
        failures.append(f"polite tenant hit tenant-level sheds: "
                        f"{polite_tenant_shed[:3]}")
    polite_p99 = percentile([r["ms"] for r in polite], 0.99)
    budget_ms = (args.deadline + 1.0) * 1000.0
    if polite_p99 > budget_ms:
        failures.append(f"polite tenant p99 {polite_p99:.0f}ms exceeds "
                        f"deadline budget {budget_ms:.0f}ms "
                        "(noisy neighbor starved it?)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--verify-share", type=float, default=0.25,
                        help="fraction of requests that also verify")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--multi-tenant", action="store_true",
                        help="mixed polite/noisy tenant load with a "
                             "mid-run hot reload clamping the noisy "
                             "tenant (fairness acceptance mode)")
    parser.add_argument("--inject", default="",
                        help="chaos faults for the spawned daemon "
                             "(worker_crash,slow_generator,...)")
    parser.add_argument("--url", default=None,
                        help="target a running daemon instead of spawning "
                             "(skips chaos flags and the drain check)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-size", type=int, default=64)
    parser.add_argument("--deadline", type=float, default=3.0)
    parser.add_argument("--drain-grace", type=float, default=20.0)
    parser.add_argument("--breaker-threshold", type=int, default=5)
    parser.add_argument("--breaker-cooldown", type=float, default=0.5)
    parser.add_argument("--chaos-rate", type=float, default=0.25)
    parser.add_argument("--chaos-slow", type=float, default=1.0)
    parser.add_argument("--cache-dir", default=None,
                        help="cache root for the spawned daemon (warm cache "
                             "keeps the run fast; also the chaos target)")
    parser.add_argument("--log", default="loadgen_daemon.log",
                        help="spawned daemon's stderr (JSON events)")
    parser.add_argument("--json", default=None,
                        help="write the full report here")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; skip the resilience assertions")
    args = parser.parse_args(argv)

    proc = None
    if args.url:
        from urllib.parse import urlparse

        parsed = urlparse(args.url)
        host, port = parsed.hostname or "127.0.0.1", parsed.port or 80
    else:
        proc, port = spawn_daemon(args, args.log)
        host = "127.0.0.1"
    client_timeout = args.deadline * 2 + 10.0

    if args.multi_tenant:
        requests = build_multi_tenant_requests(
            args.requests, args.seed, args.verify_share)
    else:
        requests = build_requests(args.requests, args.seed, args.verify_share)

    reload_info: Dict[str, object] = {}

    def fire_reload() -> None:
        """POST the noisy-tenant clamp while load is still in flight."""
        admin = Client(host, port, client_timeout)
        try:
            _, before = admin.request("GET", "/metrics")
            reload_info["sheds_before"] = _tenant_sheds(before)
            status, body = admin.request("POST", "/admin/reload", NOISY_CLAMP)
            reload_info["status"] = status
            reload_info["generation"] = body.get("generation")
            reload_info["reloaded"] = body.get("reloaded")
            reload_info["error"] = body.get("error")
        except Exception as exc:
            reload_info["status"] = -1
            reload_info["error"] = f"{type(exc).__name__}: {exc}"
        finally:
            admin.close()

    started = time.monotonic()
    results = run_load(host, port, requests, args.concurrency, client_timeout,
                       midpoint_hook=fire_reload if args.multi_tenant else None)
    wall_s = time.monotonic() - started

    chaotic = bool(args.inject)
    metrics = await_breaker_recovery(
        host, port, client_timeout, budget_s=30.0 if chaotic else 5.0)

    drain_exit: Optional[int] = None
    if proc is not None:
        proc.send_signal(signal.SIGTERM)
        try:
            drain_exit = proc.wait(timeout=args.drain_grace + 15.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            drain_exit = -9

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    latencies = [r["ms"] for r in results]
    by_status: Dict[int, int] = {}
    for row in results:
        by_status[row["status"]] = by_status.get(row["status"], 0) + 1
    counters = metrics.get("counters", {})
    undiagnosed_5xx = [r for r in results
                       if r["status"] >= 500 and not r["code"]]
    transport_failures = [r for r in results if r["status"] < 0]
    log_problems = check_log(args.log) if proc is not None else []
    report = {
        "requests": len(results),
        "wall_s": round(wall_s, 3),
        "rps": round(len(results) / wall_s, 1) if wall_s else 0.0,
        "status_counts": {str(k): v for k, v in sorted(by_status.items())},
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 2),
            "p90": round(percentile(latencies, 0.90), 2),
            "p99": round(percentile(latencies, 0.99), 2),
            "max": round(max(latencies), 2) if latencies else 0.0,
        },
        "demoted": sum(1 for r in results if r["demoted"]),
        "shed": counters.get("server.shed.queue_full", 0)
        + counters.get("server.shed.expired", 0)
        + _tenant_sheds(metrics),
        "shed_rate": metrics.get("shed_rate", 0.0),
        "breaker_trips": counters.get("server.breaker.trips", 0),
        "breaker_recoveries": counters.get("server.breaker.recoveries", 0),
        "retries": counters.get("server.retry.attempts", 0),
        "chaos": metrics.get("chaos"),
        "drain_exit": drain_exit,
        "undiagnosed_5xx": len(undiagnosed_5xx),
        "transport_failures": len(transport_failures),
        "log_problems": log_problems,
    }
    if args.multi_tenant:
        per_tenant: Dict[str, dict] = {}
        for row in results:
            tenant = row["tenant"] or "default"
            bucket = per_tenant.setdefault(tenant, {
                "requests": 0, "shed_429": 0, "tenant_shed": 0,
                "latencies": [],
            })
            bucket["requests"] += 1
            bucket["latencies"].append(row["ms"])
            if row["status"] == 429:
                bucket["shed_429"] += 1
                if row["code"] in ("HCG511", "HCG512"):
                    bucket["tenant_shed"] += 1
        report["tenants"] = {
            name: {
                "requests": bucket["requests"],
                "shed_429": bucket["shed_429"],
                "tenant_shed": bucket["tenant_shed"],
                "p99_ms": round(percentile(bucket["latencies"], 0.99), 2),
            }
            for name, bucket in sorted(per_tenant.items())
        }
        report["reload"] = {k: v for k, v in reload_info.items()
                            if k != "sheds_before"}
        report["tenant_sheds"] = {
            "before_reload": reload_info.get("sheds_before"),
            "final": _tenant_sheds(metrics),
        }
    print(json.dumps(report, indent=2))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"report": report, "results": results}, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)

    if args.no_check:
        return 0

    # ------------------------------------------------------------------
    # Resilience assertions (the CI chaos contract)
    # ------------------------------------------------------------------
    failures = []
    if undiagnosed_5xx:
        sample = undiagnosed_5xx[:3]
        failures.append(f"{len(undiagnosed_5xx)} 5xx response(s) without a "
                        f"stable HCG code, e.g. {sample}")
    if transport_failures:
        failures.append(f"{len(transport_failures)} transport failure(s): "
                        f"{transport_failures[:3]}")
    if log_problems:
        failures.append("daemon log has non-JSON lines (unhandled "
                        f"exception?): {log_problems[:3]}")
    p99 = percentile(latencies, 0.99)
    budget_ms = (args.deadline + 1.0) * 1000.0
    if p99 > budget_ms:
        failures.append(f"p99 {p99:.0f}ms exceeds deadline budget "
                        f"{budget_ms:.0f}ms")
    if proc is not None and drain_exit != 0:
        failures.append(f"drain exit code {drain_exit}, expected 0")
    # Breaker assertions only make sense for faults that actually fail
    # attempts; noisy_neighbor stalls below the deadline and must NOT
    # trip anything.
    faults = {f.strip() for f in args.inject.split(",") if f.strip()}
    if faults & {"worker_crash", "slow_generator", "disk_full"}:
        if report["breaker_trips"] < 1:
            failures.append("chaos run but the circuit breaker never tripped")
        if report["breaker_recoveries"] < 1:
            failures.append("circuit breaker tripped but never recovered")
    if args.multi_tenant:
        failures.extend(_check_multi_tenant(args, results, report,
                                            reload_info, metrics))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("loadgen: all resilience checks passed", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
