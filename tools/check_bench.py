#!/usr/bin/env python3
"""Bench-regression gate, run by the CI ``bench-regression`` job.

Compares a freshly generated ``BENCH_codegen.json`` record against the
committed baseline at the repo root, cell by cell (one cell = one
(model, arch, generator) row):

1. **Modelled cost** — ``vm_cycles_per_step`` may not regress by more
   than ``COST_TOLERANCE`` (10%).  The VM cost model is deterministic,
   so in practice any increase is a real program-quality regression.
2. **Generation time** — ``codegen_wall_s`` may not exceed twice the
   baseline.  Wall clock is noisy on shared runners, so cells faster
   than ``WALL_FLOOR_S`` in the baseline are exempt (doubling a
   millisecond is noise, doubling a second is a regression).
3. **Working set** — ``peak_live_bytes`` (schema-2 records) may not
   grow by more than ``PEAK_TOLERANCE`` (10%).  The VM's working-set
   profile is deterministic too; cells lacking the field (schema-1
   baselines) are skipped rather than failed.
4. **ISA coverage** — the baseline's benchmark rows must span every
   ISA in ``EXPECTED_ISAS``; a bench run that silently drops an
   architecture (e.g. a preset renamed without updating the matrix)
   fails the gate instead of shrinking the record.
5. **Matcher speedup** — the record's ``Synthetic<N>`` rows must show
   the indexed matcher at least ``MIN_MATCHER_SPEEDUP`` times faster
   than the naive baseline (``alg2.match.wall_s``), with modelled cost
   no worse.  The committed snapshot records the honest measured ratio
   (~11x at 300 actors); the CI floor is deliberately lower so runner
   noise cannot fail an otherwise healthy build.

Exit status 0 = clean; 1 = findings (printed one per line).  Stdlib
only.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: allowed relative growth of vm_cycles_per_step per cell
COST_TOLERANCE = 0.10

#: allowed relative growth of codegen_wall_s per cell
WALL_TOLERANCE = 2.0

#: allowed relative growth of peak_live_bytes per cell (schema >= 2);
#: the VM profile is deterministic, so growth is a real working-set
#: regression — cells lacking the field (schema-1 records) are skipped
PEAK_TOLERANCE = 0.10

#: baseline cells faster than this are exempt from the wall check
WALL_FLOOR_S = 0.05

#: the Synthetic rows must show at least this indexed-vs-naive ratio
MIN_MATCHER_SPEEDUP = 5.0

#: every full bench record must cover these ISAs (matching
#: repro.bench.trajectory.ISA_MATRIX_ARCHS resolved to ISA names)
EXPECTED_ISAS = ("neon", "sse4", "avx2", "rvv", "avx512")


def load_record(path: Path) -> dict:
    with open(path) as handle:
        record = json.load(handle)
    if record.get("kind") != "BENCH_codegen":
        raise SystemExit(f"{path}: not a BENCH_codegen record")
    return record


def cells_of(record: dict) -> dict:
    return {
        (row["model"], row["arch"], row["generator"]): row
        for row in record["results"]
    }


def check_against_baseline(current: dict, baseline: dict) -> list:
    problems = []
    current_cells = cells_of(current)
    baseline_cells = cells_of(baseline)
    shared = sorted(set(current_cells) & set(baseline_cells))
    if not shared:
        problems.append("no cells in common with the baseline record")
    for key in shared:
        now, then = current_cells[key], baseline_cells[key]
        label = "/".join(key)
        cost_now = now["vm_cycles_per_step"]
        cost_then = then["vm_cycles_per_step"]
        if cost_then > 0 and cost_now > cost_then * (1 + COST_TOLERANCE):
            problems.append(
                f"{label}: vm_cycles_per_step regressed "
                f"{cost_then} -> {cost_now} "
                f"(> {COST_TOLERANCE:.0%} tolerance)"
            )
        wall_now = now["codegen_wall_s"]
        wall_then = then["codegen_wall_s"]
        if wall_then >= WALL_FLOOR_S and wall_now > wall_then * WALL_TOLERANCE:
            problems.append(
                f"{label}: codegen_wall_s regressed "
                f"{wall_then} -> {wall_now} (> {WALL_TOLERANCE}x)"
            )
        peak_now = now.get("peak_live_bytes", 0)
        peak_then = then.get("peak_live_bytes", 0)
        if peak_then > 0 and peak_now > peak_then * (1 + PEAK_TOLERANCE):
            problems.append(
                f"{label}: peak_live_bytes regressed "
                f"{peak_then} -> {peak_now} "
                f"(> {PEAK_TOLERANCE:.0%} tolerance)"
            )
    return problems


def check_isa_coverage(record: dict, where: str) -> list:
    """The benchmark rows must span every expected ISA."""
    covered = {
        row["isa"] for row in record["results"]
        if not row["model"].startswith("Synthetic")
    }
    missing = [isa for isa in EXPECTED_ISAS if isa not in covered]
    if missing:
        return [
            f"{where}: benchmark rows cover no {isa!r} cells "
            f"(expected ISAs: {', '.join(EXPECTED_ISAS)})"
            for isa in missing
        ]
    return []


def check_matcher_speedup(record: dict, where: str) -> list:
    problems = []
    by_model: dict = {}
    for row in record["results"]:
        if row["model"].startswith("Synthetic"):
            by_model.setdefault((row["model"], row["arch"]), {})[
                row["generator"]
            ] = row
    if not by_model:
        problems.append(
            f"{where}: no Synthetic rows (run bench with --synthetic N)"
        )
    for (model, arch), rows in sorted(by_model.items()):
        label = f"{model}/{arch}"
        if not {"hcg_indexed", "hcg_naive"} <= set(rows):
            problems.append(f"{where}: {label}: missing a matcher cell")
            continue
        indexed, naive = rows["hcg_indexed"], rows["hcg_naive"]
        indexed_wall = indexed["metrics"].get("alg2.match.wall_s")
        naive_wall = naive["metrics"].get("alg2.match.wall_s")
        if not indexed_wall or not naive_wall:
            problems.append(
                f"{where}: {label}: alg2.match.wall_s missing from metrics"
            )
            continue
        speedup = naive_wall / indexed_wall
        if speedup < MIN_MATCHER_SPEEDUP:
            problems.append(
                f"{where}: {label}: indexed matcher only {speedup:.1f}x "
                f"faster than naive (floor {MIN_MATCHER_SPEEDUP}x)"
            )
        if indexed["vm_cycles_per_step"] > naive["vm_cycles_per_step"]:
            problems.append(
                f"{where}: {label}: indexed program costs more than naive "
                f"({indexed['vm_cycles_per_step']} > "
                f"{naive['vm_cycles_per_step']} cycles/step)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current", nargs="?", default=None,
        help="freshly generated record to gate (default: check only the "
             "committed baseline's matcher rows)",
    )
    parser.add_argument(
        "--baseline", default=str(REPO / "BENCH_codegen.json"),
        help="committed baseline record (default: repo root)",
    )
    args = parser.parse_args(argv)

    baseline = load_record(Path(args.baseline))
    problems = check_matcher_speedup(baseline, "baseline")
    problems += check_isa_coverage(baseline, "baseline")
    if args.current:
        current = load_record(Path(args.current))
        problems += check_against_baseline(current, baseline)
        problems += check_matcher_speedup(current, "current")
        problems += check_isa_coverage(current, "current")
    for problem in problems:
        print(problem)
    if problems:
        print(f"check_bench: {len(problems)} problem(s)")
        return 1
    cells = len(baseline["results"])
    print(f"check_bench: OK ({cells} baseline cell(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
