#!/usr/bin/env python3
"""Enforce the public-API boundary of the reproduction (stdlib only).

``repro.api`` is the supported programmatic surface (docs/api.md);
everything under ``repro.codegen`` is internal. This lint fails the
build when a file *outside* ``src/repro`` imports generator internals,
so new code is pushed through the facade.

Existing offenders — the unit tests of the internals themselves, the
benchmark suite and the worked examples, all written before the facade
existed — are grandfathered in ``ALLOWED`` below. The list only ever
shrinks: migrating a file off internals means deleting its line here,
and adding a new import of ``repro.codegen`` outside this list (or
re-offending from a migrated file) fails CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: directories scanned for boundary violations (src/repro itself may
#: import its internals freely)
SCANNED = ("tests", "benchmarks", "examples", "tools")

#: import of any repro.codegen module, e.g.
#:   from repro.codegen.hcg.generator import HcgGenerator
#:   import repro.codegen.common as common
INTERNAL_IMPORT = re.compile(
    r"^\s*(?:from|import)\s+repro\.codegen(?:\.|\s|$)", re.MULTILINE
)

#: import of the memory-aware scheduler's internals; the supported
#: surface is repro.api.partition plus CodegenOptions.memory_budget
SCHED_IMPORT = re.compile(
    r"^\s*(?:from|import)\s+repro\.sched(?:\.|\s|$)", re.MULTILINE
)

#: grandfathered offenders (see module docstring) — never add to this
ALLOWED = {
    "benchmarks/test_ablations.py",
    "benchmarks/test_conv_adaptivity.py",
    "benchmarks/test_native_speedup.py",
    "examples/custom_architecture.py",
    "examples/fft_spectrum.py",
    "examples/figure2_codegen.py",
    "examples/image_pipeline.py",
    "examples/overlap_blocks.py",
    "examples/quickstart.py",
    "examples/signal_pipeline.py",
    "tests/codegen/test_baselines.py",
    "tests/codegen/test_batch.py",
    "tests/codegen/test_branch_aware.py",
    "tests/codegen/test_common.py",
    "tests/codegen/test_copy_actors.py",
    "tests/codegen/test_dfg_subgraphs.py",
    "tests/codegen/test_dispatch.py",
    "tests/codegen/test_hcg.py",
    "tests/codegen/test_history_intensive.py",
    "tests/codegen/test_listing1.py",
    # unit tests of the indexed matcher / predicated-tail internals,
    # added alongside those subsystems; like the rest of this list,
    # they leave it only by migrating onto the facade
    "tests/codegen/test_matcher_equivalence.py",
    "tests/codegen/test_matchindex.py",
    "tests/codegen/test_predicated_tail.py",
    "tests/codegen/test_reuse.py",
    "tests/codegen/test_unsigned_batch.py",
    "tests/compiler/test_passes.py",
    "tests/integration/test_2d_models.py",
    "tests/integration/test_compile_c.py",
    "tests/integration/test_consistency.py",
    "tests/integration/test_failure_injection.py",
    "tests/integration/test_model_files.py",
    "tests/integration/test_tutorial.py",
    "tests/ir/test_printer_cemit.py",
    "tests/ir/test_project.py",
    "tests/model/test_mdl_io.py",
    "tests/observability/test_tracer.py",
    "tests/robustness/test_cli_robust.py",
    "tests/robustness/test_fault_injection.py",
    "tests/robustness/test_history_locking.py",
    "tests/robustness/test_history_robust.py",
    "tests/robustness/test_property_history.py",
    "tests/vm/test_profile.py",
}

#: the scheduler's own unit tests, which exercise its internals by
#: design; everything else goes through repro.api.partition and
#: CodegenOptions.memory_budget.  This list only ever shrinks too.
SCHED_ALLOWED = {
    "tests/sched/test_liveness.py",
    "tests/sched/test_partition.py",
    "tests/sched/test_tiling.py",
}


def offending_files(pattern: re.Pattern) -> list[str]:
    found = []
    for directory in SCANNED:
        base = ROOT / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(ROOT).as_posix()
            if rel == "tools/check_api_boundary.py":
                continue  # this file names the patterns it greps for
            if pattern.search(path.read_text(encoding="utf-8")):
                found.append(rel)
    return found


def check_boundary(pattern: re.Pattern, allowed: set, what: str) -> int:
    found = offending_files(pattern)
    new = [rel for rel in found if rel not in allowed]
    stale = sorted(allowed - set(found))
    status = 0
    if new:
        print(f"New imports of {what} internals outside src/repro:")
        for rel in new:
            print(f"  {rel}")
        print(
            "Use the stable repro.api facade instead (docs/api.md); the\n"
            "grandfather lists in tools/check_api_boundary.py only shrink."
        )
        status = 1
    if stale:
        print(f"Allowlisted files no longer import {what} — delete them")
        print("from the allowlist in tools/check_api_boundary.py:")
        for rel in stale:
            print(f"  {rel}")
        status = 1
    if status == 0:
        print(
            f"{what} boundary clean: {len(found)} grandfathered "
            f"offender(s), 0 new"
        )
    return status


def main() -> int:
    status = check_boundary(INTERNAL_IMPORT, ALLOWED, "repro.codegen")
    status |= check_boundary(SCHED_IMPORT, SCHED_ALLOWED, "repro.sched")
    return status


if __name__ == "__main__":
    sys.exit(main())
