#!/usr/bin/env python3
"""Enforce the public-API boundary of the reproduction (stdlib only).

``repro.api`` is the supported programmatic surface (docs/api.md);
everything under ``repro.codegen`` is internal. This lint fails the
build when a file *outside* ``src/repro`` imports generator internals,
so new code is pushed through the facade.

Existing offenders — the unit tests of the internals themselves, the
benchmark suite and the worked examples, all written before the facade
existed — are grandfathered in ``ALLOWED`` below. The list only ever
shrinks: migrating a file off internals means deleting its line here,
and adding a new import of ``repro.codegen`` outside this list (or
re-offending from a migrated file) fails CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: directories scanned for boundary violations (src/repro itself may
#: import its internals freely)
SCANNED = ("tests", "benchmarks", "examples", "tools")

#: import of any repro.codegen module, e.g.
#:   from repro.codegen.hcg.generator import HcgGenerator
#:   import repro.codegen.common as common
INTERNAL_IMPORT = re.compile(
    r"^\s*(?:from|import)\s+repro\.codegen(?:\.|\s|$)", re.MULTILINE
)

#: grandfathered offenders (see module docstring) — never add to this
ALLOWED = {
    "benchmarks/test_ablations.py",
    "benchmarks/test_conv_adaptivity.py",
    "benchmarks/test_native_speedup.py",
    "examples/custom_architecture.py",
    "examples/fft_spectrum.py",
    "examples/figure2_codegen.py",
    "examples/image_pipeline.py",
    "examples/overlap_blocks.py",
    "examples/quickstart.py",
    "examples/signal_pipeline.py",
    "tests/codegen/test_baselines.py",
    "tests/codegen/test_batch.py",
    "tests/codegen/test_branch_aware.py",
    "tests/codegen/test_common.py",
    "tests/codegen/test_copy_actors.py",
    "tests/codegen/test_dfg_subgraphs.py",
    "tests/codegen/test_dispatch.py",
    "tests/codegen/test_hcg.py",
    "tests/codegen/test_history_intensive.py",
    "tests/codegen/test_listing1.py",
    "tests/codegen/test_reuse.py",
    "tests/codegen/test_unsigned_batch.py",
    "tests/compiler/test_passes.py",
    "tests/integration/test_2d_models.py",
    "tests/integration/test_compile_c.py",
    "tests/integration/test_consistency.py",
    "tests/integration/test_failure_injection.py",
    "tests/integration/test_model_files.py",
    "tests/integration/test_tutorial.py",
    "tests/ir/test_printer_cemit.py",
    "tests/ir/test_project.py",
    "tests/model/test_mdl_io.py",
    "tests/observability/test_tracer.py",
    "tests/robustness/test_cli_robust.py",
    "tests/robustness/test_fault_injection.py",
    "tests/robustness/test_history_locking.py",
    "tests/robustness/test_history_robust.py",
    "tests/robustness/test_property_history.py",
    "tests/vm/test_profile.py",
}


def offending_files() -> list[str]:
    found = []
    for directory in SCANNED:
        base = ROOT / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(ROOT).as_posix()
            if rel == "tools/check_api_boundary.py":
                continue  # this file names the pattern it greps for
            if INTERNAL_IMPORT.search(path.read_text(encoding="utf-8")):
                found.append(rel)
    return found


def main() -> int:
    found = offending_files()
    new = [rel for rel in found if rel not in ALLOWED]
    stale = sorted(ALLOWED - set(found))
    status = 0
    if new:
        print("New imports of repro.codegen internals outside src/repro:")
        for rel in new:
            print(f"  {rel}")
        print(
            "Use the stable repro.api facade instead (docs/api.md); the\n"
            "grandfather list in tools/check_api_boundary.py only shrinks."
        )
        status = 1
    if stale:
        print("Allowlisted files no longer import internals — delete them")
        print("from ALLOWED in tools/check_api_boundary.py:")
        for rel in stale:
            print(f"  {rel}")
        status = 1
    if status == 0:
        print(
            f"api boundary clean: {len(found)} grandfathered offender(s), "
            f"0 new"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
